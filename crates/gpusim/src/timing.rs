//! Cycle-level SM timing model.
//!
//! One *wave* of resident thread blocks is simulated cycle-by-cycle on one
//! SM, executing instructions functionally at issue so that register-bank
//! conflicts, shared-memory bank conflicts and L2/DRAM behaviour come from
//! exact addresses. The per-wave machinery (`simulate_wave`) is shared
//! with the full-device model ([`crate::device_sim`]), which places every
//! block of the launch on its SM and runs this wave loop per SM.
//!
//! [`time_kernel`] itself is the retained *one-wave analytic* path: it times
//! a single steady-state wave and extrapolates across waves arithmetically,
//! bounded below by DRAM bandwidth (§3.2–3.4 of DESIGN.md). This is exact on
//! grids that are a whole multiple of full waves (every block does identical
//! work in the paper's kernels) and is kept as the cheap inner-loop model and
//! as a cross-check for the device model; grids with a partial last wave are
//! mistimed here and corrected by [`crate::device_sim::time_kernel_device`].
//!
//! The model implements the paper's scheduling machinery explicitly:
//!
//! * **stall counts** gate the earliest next issue of a warp;
//! * **wait barriers** (scoreboards) gate issue until variable-latency
//!   producers complete;
//! * the **yield flag** steers the scheduler's warp choice: when set it
//!   stays on the same warp, when clear it switches, paying one dead cycle
//!   and invalidating the operand reuse cache (§5.1.4);
//! * the FP32 pipe takes 2 cycles per warp instruction (16 lanes/scheduler)
//!   plus 1 for a register-bank conflict — three distinct source registers
//!   with the same index parity, unless `.reuse` covers one (§5.2.2);
//! * `LDS`/`STS` occupy the MIO pipe for a number of phases derived from
//!   exact bank-conflict analysis (32 banks × 4 B; wide accesses are served
//!   in 64-bit/128-bit phases);
//! * `LDG`/`STG` coalesce into 32 B sectors, look up a set-associative L2,
//!   and account DRAM traffic.

use sass::reg::Reg;
use sass::Module;

use crate::counters::{CounterCollector, HwCounters};
use crate::decode::{decode_module, InstDesc, MemKind, PipeKind};
use crate::device::DeviceSpec;
use crate::exec::{step, ExecEnv, StepEvent, Warp, WARP_SIZE};
use crate::launch::{Gpu, LaunchDims, LaunchError};
use crate::memory::{ConstBank, GlobalMemory};
use crate::simprof::{Collector, KernelProfile, SchedClass, StallCause};
use crate::timeq::TimeQueue;

/// Options for a timing run.
#[derive(Clone, Copy, Debug, Default)]
pub struct TimingOptions {
    /// Override the number of resident blocks per SM (defaults to the
    /// occupancy calculation).
    pub blocks_per_sm: Option<u32>,
    /// Simulate only instruction indices in `[start, end)` as the region of
    /// interest for cycle/FLOP accounting (the paper reports "main loop"
    /// numbers separately from whole-kernel numbers). Everything still
    /// executes; only the accounting window changes.
    pub region: Option<(u32, u32)>,
    /// Strict load writeback: memory loads deposit a poison bit pattern at
    /// issue and only deliver their real data when the scoreboard signals.
    /// Under a *correct* schedule (§5.1.4) results are unchanged; a missing
    /// stall or wait lets consumers see poison and corrupts the output —
    /// a dynamic validator for the kernels' control codes, catching
    /// loop-carried hazards the static linter's per-block analysis cannot.
    pub strict_writeback: bool,
    /// Collect a per-instruction stall-attribution profile of the simulated
    /// wave (see [`crate::simprof`]). Off by default: the profiling path is
    /// fully skipped and `KernelTiming` is unchanged except `profile: None`.
    pub profile: bool,
    /// Collect per-launch hardware counters (see [`crate::counters`]). Off
    /// by default, and zero-cost like `profile`: `KernelTiming` is unchanged
    /// except `counters: None`.
    pub counters: bool,
}

/// Result of timing one kernel.
#[derive(Clone, Debug)]
pub struct KernelTiming {
    /// Cycles for one wave of resident blocks on one SM.
    pub wave_cycles: u64,
    /// Number of waves needed across the whole device.
    pub waves: u64,
    /// Resident blocks per SM used for the wave.
    pub blocks_per_sm: u32,
    /// Total thread blocks in the grid.
    pub total_blocks: u64,
    /// SMs that receive at least one block (`min(total_blocks, num_sms)`):
    /// grids smaller than the device leave the remaining SMs idle and must
    /// not be charged a full-device wave.
    pub busy_sms: u32,
    /// Whole-kernel time in seconds (max of compute and DRAM bounds).
    pub time_s: f64,
    /// FP32 FLOPs executed by the whole grid (2 per FFMA lane, 1 per
    /// FADD/FMUL lane).
    pub flops: f64,
    /// Achieved TFLOP/s over the whole kernel.
    pub tflops: f64,
    /// FP32-pipe utilization during the accounting region when one was
    /// given, else over the whole kernel — our equivalent of Nsight
    /// Compute's SM "speed of light" (§7.2).
    pub sol_pct: f64,
    /// FP32-pipe utilization over the whole kernel, in percent.
    pub sol_total_pct: f64,
    /// Issue-slot utilization in percent.
    pub issue_util_pct: f64,
    /// Estimated DRAM traffic of the whole grid, bytes.
    pub dram_bytes: u64,
    /// Pure-DRAM lower bound on kernel time, seconds.
    pub dram_time_s: f64,
    /// Cycles in the accounting region.
    pub region_cycles: u64,
    /// Extra FP32-pipe cycles lost to register bank conflicts.
    pub reg_bank_conflict_cycles: u64,
    /// Extra MIO cycles lost to shared-memory bank conflicts.
    pub smem_conflict_cycles: u64,
    /// Cycles the schedulers lost to warp switches (cleared yield flag).
    pub yield_switch_cycles: u64,
    /// Attribution of scheduler-idle cycles (FP pipe free, nothing issued):
    /// `[barrier, scoreboard-wait, mio-queue, stall, empty]`.
    pub idle_breakdown: [u64; 5],
    /// Per-instruction stall-attribution profile of the simulated wave,
    /// present when [`TimingOptions::profile`] was set.
    pub profile: Option<KernelProfile>,
    /// Per-launch hardware counters of the simulated wave, present when
    /// [`TimingOptions::counters`] was set.
    pub counters: Option<HwCounters>,
}

impl KernelTiming {
    /// Main-loop (region) TFLOP/s on the simulated device: the region's
    /// FLOPs per SM over the region's cycles, scaled to the whole chip.
    pub fn region_tflops(&self, device: &DeviceSpec, region_flops_per_block: f64) -> f64 {
        if self.region_cycles == 0 {
            return 0.0;
        }
        let blocks = self.blocks_per_sm as f64;
        let region_time = self.region_cycles as f64 / device.clock_hz;
        region_flops_per_block * blocks * device.num_sms as f64 / region_time / 1e12
    }
}

// ---- L2 cache model ----------------------------------------------------------

/// Set-associative, sectored L2 with LRU replacement. Presence is tracked
/// at 32 B sector granularity, like the real cache: a miss fills only the
/// missing sector, so DRAM traffic is counted per sector.
pub(crate) struct L2Cache {
    sets: Vec<Vec<(u64, u64)>>, // (sector tag, last-use stamp)
    ways: usize,
    num_sets: u64,
    stamp: u64,
}

const L2_LINE: u64 = 32;

impl L2Cache {
    fn new(bytes: u64) -> Self {
        let ways = 16usize;
        let num_sets = (bytes / L2_LINE / ways as u64).max(1);
        L2Cache {
            sets: vec![Vec::new(); num_sets as usize],
            ways,
            num_sets,
            stamp: 0,
        }
    }

    /// Drop a sector if present (store-coherence for the L1 model).
    fn invalidate(&mut self, addr: u64) {
        let line = addr / L2_LINE;
        let set = (line % self.num_sets) as usize;
        self.sets[set].retain(|e| e.0 != line);
    }

    /// Access one 32 B sector; returns true on hit.
    fn access(&mut self, addr: u64) -> bool {
        let line = addr / L2_LINE;
        let set = (line % self.num_sets) as usize;
        self.stamp += 1;
        let stamp = self.stamp;
        let entries = &mut self.sets[set];
        if let Some(e) = entries.iter_mut().find(|e| e.0 == line) {
            e.1 = stamp;
            return true;
        }
        if entries.len() >= self.ways {
            let lru = entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.1)
                .map(|(i, _)| i)
                .unwrap();
            entries.swap_remove(lru);
        }
        entries.push((line, stamp));
        false
    }
}

// ---- shared-memory bank-conflict analysis ------------------------------------

/// Number of MIO phases needed to service one shared-memory warp access.
///
/// Shared memory has 32 banks of 4 B. A 32-bit access is serviced in one
/// phase over the full warp; 64-bit in two half-warp phases; 128-bit in four
/// quarter-warp phases (this is why the paper needs the Fig. 3 arrangement —
/// the hardware broadcast rule is per-phase, and patterns that look
/// broadcast-friendly across the full warp still conflict within a phase).
/// Within a phase, the cost is the maximum over banks of the number of
/// *distinct* 4 B words requested in that bank (same word broadcasts).
pub fn smem_phases(addrs: &[u32], width_bytes: u32) -> u32 {
    if addrs.is_empty() {
        return 0;
    }
    let words_per_lane = (width_bytes / 4).max(1);
    let lanes_per_phase = (32 / words_per_lane).max(1) as usize;
    let mut total = 0u32;
    for chunk in addrs.chunks(lanes_per_phase) {
        // All words of all lanes in this phase go out together: at most 32
        // words (`lanes_per_phase × words_per_lane`), so a fixed buffer
        // replaces the per-phase hash maps the hot loop used to allocate.
        let mut words = [0u32; 32];
        let mut n = 0usize;
        for &a in chunk {
            for w in 0..words_per_lane {
                words[n] = a / 4 + w;
                n += 1;
            }
        }
        words[..n].sort_unstable();
        // Distinct words per bank; the per-phase cost is the busiest bank.
        let mut per_bank = [0u32; 32];
        let mut prev = None;
        for &word in &words[..n] {
            if prev != Some(word) {
                per_bank[(word % 32) as usize] += 1;
                prev = Some(word);
            }
        }
        total += per_bank.iter().copied().max().unwrap().max(1);
    }
    total
}

/// Number of distinct 32 B sectors touched by a global warp access.
pub fn global_sectors(addrs: &[u64], width_bytes: u32) -> Vec<u64> {
    let mut sectors = Vec::new();
    global_sectors_into(addrs, width_bytes, &mut sectors);
    sectors
}

/// [`global_sectors`] into a caller-owned scratch buffer, so the timing loop
/// reuses one allocation across every global access of a launch.
fn global_sectors_into(addrs: &[u64], width_bytes: u32, sectors: &mut Vec<u64>) {
    sectors.clear();
    for &a in addrs {
        let first = a / 32;
        let last = (a + width_bytes as u64 - 1) / 32;
        sectors.extend(first..=last);
    }
    sectors.sort_unstable();
    sectors.dedup();
}

// ---- per-warp scheduling state -----------------------------------------------

struct WarpSlot {
    warp: Warp,
    block: usize,
    ready_at: u64,
    sb_pending: [u32; 6],
    /// Bit `b` set iff `sb_pending[b] > 0` — the scheduler's wait check is
    /// one AND against the instruction's wait mask.
    pending_mask: u8,
    at_barrier: bool,
    /// Current PC, cached across scheduler passes (recomputed only after
    /// this warp steps); `None` once no context remains.
    cur_pc: Option<u32>,
    /// Reuse cache: operand slot -> latched register, per §5.1.4.
    reuse_cache: [Option<Reg>; 4],
    /// Yield flag of the last issued instruction.
    last_yield: bool,
}

impl WarpSlot {
    /// Adjust `sb_pending[b]` and keep `pending_mask` in sync.
    fn sb_add(&mut self, b: u8) {
        self.sb_pending[b as usize] += 1;
        self.pending_mask |= 1 << b;
    }

    fn sb_release(&mut self, b: u8) {
        let p = &mut self.sb_pending[b as usize];
        *p = p.saturating_sub(1);
        if *p == 0 {
            self.pending_mask &= !(1 << b);
        }
    }
}

/// Deferred load data (strict mode): (first reg, lane mask, per-reg lane
/// values). Only the masked lanes are written back — exactly the lanes the
/// (possibly predicated) load produced, like hardware. Scoreboard events are
/// keyed by `(warp, barrier)` in the wave's [`TimeQueue`], preserving the
/// old `(cycle, warp, barrier)` delivery order exactly.
type Writeback = Option<(u8, u32, Vec<[u32; 32]>)>;

// ---- per-SM wave simulation (shared with `device_sim`) -----------------------

/// SM-persistent memory-system state carried across waves: the device model
/// simulates one SM's blocks wave after wave, and a later wave sees the L2,
/// the L1 and the memory-backend backlog its predecessors left behind. The
/// one-wave path uses a fresh carry (plus its explicit L2 warm-up block).
pub(crate) struct SmCarry {
    pub(crate) l2: L2Cache,
    pub(crate) l1: L2Cache,
    /// Residual memory-backend backlog at wave end, in cycles of service
    /// still queued (the next wave starts with its `mem_q` at this bound).
    pub(crate) mem_q: f64,
}

impl SmCarry {
    pub(crate) fn new(device: &DeviceSpec, smem_bytes: u32, resident: u32) -> Self {
        // L1: whatever the combined L1/shared capacity leaves after the
        // resident blocks' shared-memory allocations. Sectored,
        // write-through/no-allocate. The L2 is modelled at full device
        // capacity per SM — the paper's kernels share their hot (filter)
        // data across SMs, so symmetric sharing is the closest cheap model.
        let smem_used = resident as u64 * smem_bytes as u64;
        let l1_bytes = (device.l1_smem_combined as u64)
            .saturating_sub(smem_used)
            .max(4 * 1024);
        SmCarry {
            l2: L2Cache::new(device.l2_bytes),
            l1: L2Cache::new(l1_bytes),
            mem_q: 0.0,
        }
    }
}

/// Inputs of one wave simulation on one SM.
pub(crate) struct WaveParams<'a> {
    pub(crate) device: &'a DeviceSpec,
    pub(crate) module: &'a Module,
    pub(crate) table: &'a [InstDesc],
    pub(crate) dims: LaunchDims,
    pub(crate) cbank: &'a ConstBank,
    pub(crate) opts: TimingOptions,
    /// Grid coordinates of the blocks resident in this wave (one entry per
    /// simulated block; decides both addressing and functional effects).
    pub(crate) coords: &'a [[u32; 3]],
    /// SMs competing for the L2/DRAM backend during this wave. Each SM gets
    /// a `1/share_sms` bandwidth share; the one-wave path always charges the
    /// full device, the device model charges only the SMs still busy.
    pub(crate) share_sms: f64,
}

/// Raw per-wave tallies. `cycles` is the loop's final cycle count without
/// the `max(1)` clamp so callers can sum or compare waves exactly; the
/// profile/counter collectors come back unfinished for the same reason.
pub(crate) struct WaveOutput {
    pub(crate) cycles: u64,
    pub(crate) fp_active: u64,
    pub(crate) issued: u64,
    pub(crate) flops: u64,
    pub(crate) dram_bytes: u64,
    pub(crate) reg_conflicts: u64,
    pub(crate) smem_conflict_cycles: u64,
    pub(crate) yield_switches: u64,
    pub(crate) idle_attr: [u64; 5],
    pub(crate) region_first: Option<u64>,
    pub(crate) region_last: u64,
    pub(crate) region_fp_active: u64,
    pub(crate) prof: Option<Collector>,
    pub(crate) ctr: Option<CounterCollector>,
}

impl WaveOutput {
    /// Cycles spanned by the accounting region in this wave (0 if none).
    pub(crate) fn region_cycles(&self) -> u64 {
        match self.region_first {
            Some(f) => self.region_last.saturating_sub(f).max(1),
            None => 0,
        }
    }
}

/// Grid coordinates of linear block index `i` (x fastest, like hardware).
pub(crate) fn grid_coord(dims: LaunchDims, i: u64) -> [u32; 3] {
    [
        (i % dims.grid[0] as u64) as u32,
        ((i / dims.grid[0] as u64) % dims.grid[1] as u64) as u32,
        (i / (dims.grid[0] as u64 * dims.grid[1] as u64)) as u32,
    ]
}

/// Timing of an empty grid: no blocks, no cycles, no time. Collectors are
/// omitted — there is no wave to attribute slots to.
pub(crate) fn zero_timing(total_blocks: u64) -> KernelTiming {
    KernelTiming {
        wave_cycles: 0,
        waves: 0,
        blocks_per_sm: 0,
        total_blocks,
        busy_sms: 0,
        time_s: 0.0,
        flops: 0.0,
        tflops: 0.0,
        sol_pct: 0.0,
        sol_total_pct: 0.0,
        issue_util_pct: 0.0,
        dram_bytes: 0,
        dram_time_s: 0.0,
        region_cycles: 0,
        reg_bank_conflict_cycles: 0,
        smem_conflict_cycles: 0,
        yield_switch_cycles: 0,
        idle_breakdown: [0; 5],
        profile: None,
        counters: None,
    }
}

/// Occupancy-checked effective residency for a launch: the occupancy bound
/// (or its override), capped at the blocks the grid can actually deliver to
/// one SM — a grid smaller than one SM's residency must not be timed as if
/// every SM ran a full complement.
pub(crate) fn effective_residency(
    device: &DeviceSpec,
    module: &Module,
    dims: LaunchDims,
    opts: &TimingOptions,
) -> Result<u32, LaunchError> {
    let tpb = dims.threads_per_block();
    let occupancy = device.blocks_per_sm(tpb, module.info.num_regs as u32, module.info.smem_bytes);
    if occupancy == 0 {
        return Err(LaunchError::BadBlockShape(format!(
            "kernel cannot be resident: {} regs, {} B smem, {} threads",
            module.info.num_regs, module.info.smem_bytes, tpb
        )));
    }
    let per_sm_blocks = dims.num_blocks().div_ceil(device.num_sms as u64);
    Ok(opts
        .blocks_per_sm
        .unwrap_or(occupancy)
        .min(per_sm_blocks.min(u32::MAX as u64) as u32)
        .max(1))
}

/// Time one kernel launch on `gpu`. Executes the simulated wave functionally
/// (the blocks it simulates really run), then scales to the whole grid.
pub fn time_kernel(
    gpu: &mut Gpu,
    module: &Module,
    dims: LaunchDims,
    params: &[u8],
    opts: TimingOptions,
) -> Result<KernelTiming, LaunchError> {
    // Decoded-instruction descriptor table: one flat entry per PC, so the
    // per-cycle path below never pattern-matches `Op` (see `crate::decode`).
    let table: Vec<InstDesc> = decode_module(&module.insts, opts.region);
    time_kernel_with_table(gpu, module, dims, params, opts, &table)
}

/// [`time_kernel`] with a caller-supplied descriptor table, the batch
/// fast path ([`crate::batch::BatchTimer`]): schedule-tuner candidates share
/// their baseline's operand analysis and only re-patch control-code fields.
/// `table[pc]` must describe `module.insts[pc]` under `opts.region`.
pub(crate) fn time_kernel_with_table(
    gpu: &mut Gpu,
    module: &Module,
    dims: LaunchDims,
    params: &[u8],
    opts: TimingOptions,
    table: &[InstDesc],
) -> Result<KernelTiming, LaunchError> {
    debug_assert_eq!(table.len(), module.insts.len());
    let device = gpu.device.clone();
    let total_blocks = dims.num_blocks();
    let resident = effective_residency(&device, module, dims, &opts)?;
    if total_blocks == 0 {
        // An empty grid does no work; the old formula still charged it a
        // full-device wave.
        return Ok(zero_timing(0));
    }

    let cbank = ConstBank::new(dims.block, dims.grid, params);
    // Map resident block index -> actual grid coordinates. Block 0 of the
    // grid serves as an L2 warm-up block (see below), so the timed wave
    // uses blocks 1..=resident when the grid is large enough — a
    // steady-state wave whose neighbours have already pulled the shared
    // (filter) data into L2.
    let warm = total_blocks > resident as u64;
    let coords: Vec<[u32; 3]> = (0..resident as u64)
        .map(|b| grid_coord(dims, b + warm as u64))
        .collect();

    let mut carry = SmCarry::new(&device, module.info.smem_bytes, resident);
    if warm {
        warm_l2(
            &mut gpu.mem,
            module,
            &cbank,
            [0, 0, 0],
            dims.block,
            &mut carry.l2,
        )?;
    }
    let wave = simulate_wave(
        &mut gpu.mem,
        &WaveParams {
            device: &device,
            module,
            table,
            dims,
            cbank: &cbank,
            opts,
            coords: &coords,
            share_sms: device.num_sms as f64,
        },
        &mut carry,
    )?;

    let schedulers = device.schedulers_per_sm as usize;
    let wave_cycles = wave.cycles.max(1);
    let waves = total_blocks
        .div_ceil(resident as u64 * device.num_sms as u64)
        .max(1);
    // Blocks in the wave we actually simulated:
    let simulated_blocks = resident as u64;
    let flops_total = wave.flops as f64 * total_blocks as f64 / simulated_blocks as f64;
    let dram_total =
        (wave.dram_bytes as f64 * total_blocks as f64 / simulated_blocks as f64) as u64;

    let compute_time = waves as f64 * wave_cycles as f64 / device.clock_hz;
    let dram_time = dram_total as f64 / device.dram_bw;
    let time_s = compute_time.max(dram_time);

    let region_cycles = wave.region_cycles();
    let sol_total = wave.fp_active as f64 / (schedulers as f64 * wave_cycles as f64);
    let sol_base = if opts.region.is_some() && region_cycles > 0 {
        wave.region_fp_active as f64 / (schedulers as f64 * region_cycles as f64)
    } else {
        sol_total
    };

    Ok(KernelTiming {
        wave_cycles,
        waves,
        blocks_per_sm: resident,
        total_blocks,
        busy_sms: total_blocks.min(device.num_sms as u64) as u32,
        time_s,
        flops: flops_total,
        tflops: flops_total / time_s / 1e12,
        sol_pct: 100.0 * sol_base,
        sol_total_pct: 100.0 * sol_total,
        issue_util_pct: 100.0 * wave.issued as f64 / (schedulers as f64 * wave_cycles as f64),
        dram_bytes: dram_total,
        dram_time_s: dram_time,
        region_cycles,
        reg_bank_conflict_cycles: wave.reg_conflicts,
        smem_conflict_cycles: wave.smem_conflict_cycles,
        yield_switch_cycles: wave.yield_switches,
        idle_breakdown: wave.idle_attr,
        profile: wave.prof.map(|p| p.finish(wave_cycles)),
        counters: wave.ctr.map(|cc| cc.finish(wave_cycles)),
    })
}

/// Simulate one wave of `p.coords.len()` blocks cycle-by-cycle on one SM,
/// executing each issued instruction functionally against `mem`. Shared by
/// the one-wave analytic path above and the full-device model
/// ([`crate::device_sim`]), which calls it per SM per wave with the
/// memory-system state carried between waves in `carry`.
pub(crate) fn simulate_wave(
    mem: &mut GlobalMemory,
    p: &WaveParams<'_>,
    carry: &mut SmCarry,
) -> Result<WaveOutput, LaunchError> {
    let device = p.device;
    let module = p.module;
    let table = p.table;
    let dims = p.dims;
    let cbank = p.cbank;
    let opts = p.opts;
    let coords = p.coords;
    let tpb = dims.threads_per_block();
    let resident = coords.len() as u32;
    let warps_per_block = tpb.div_ceil(WARP_SIZE) as usize;
    let num_warps = warps_per_block * resident as usize;

    // Architectural state: `resident` blocks, each with its own smem.
    let mut smems: Vec<Vec<u8>> = (0..resident)
        .map(|_| vec![0u8; module.info.smem_bytes as usize])
        .collect();
    let mut slots: Vec<WarpSlot> = (0..num_warps)
        .map(|i| {
            let block = i / warps_per_block;
            let w = (i % warps_per_block) as u32;
            let base = w * WARP_SIZE;
            let lanes = (tpb - base).min(WARP_SIZE);
            let warp = Warp::new(module.info.num_regs.max(1), base, lanes);
            let cur_pc = warp.current_ctx().map(|c| c.pc);
            WarpSlot {
                warp,
                block,
                ready_at: 0,
                sb_pending: [0; 6],
                pending_mask: 0,
                at_barrier: false,
                cur_pc,
                reuse_cache: [None; 4],
                last_yield: true,
            }
        })
        .collect();

    let schedulers = device.schedulers_per_sm as usize;
    // Warp -> scheduler assignment, round-robin like hardware. The lists are
    // fixed for the wave, so build them once; ascending warp order preserves
    // the scheduler's candidate iteration order.
    let mut sched_warps: Vec<Vec<usize>> = vec![Vec::new(); schedulers];
    for w in 0..num_warps {
        sched_warps[w % schedulers].push(w);
    }

    let mut events: TimeQueue<(usize, u8), Writeback> = TimeQueue::new();
    let l2 = &mut carry.l2;
    let l1 = &mut carry.l1;

    // Per-scheduler state.
    let mut fp_busy = vec![0u64; schedulers];
    let mut int_busy = vec![0u64; schedulers];
    let mut sched_free = vec![0u64; schedulers];
    let mut last_warp: Vec<Option<usize>> = vec![None; schedulers];
    // Per-SM MIO pipe.
    let mut mio_busy = 0u64;
    // Memory-backend service queue: each SM gets a fair share of L2/DRAM
    // bandwidth; sector service times accumulate here so bursty load
    // streams see queueing delay, not just fixed latency. This is what
    // makes the §3.3 arithmetic-intensity argument live: a kernel whose
    // sector demand outruns its share becomes memory-throughput-bound.
    let mut mem_q: f64 = carry.mem_q;
    let l2_cycles_per_sector = 32.0 * p.share_sms * device.clock_hz / device.l2_bw;
    let dram_cycles_per_sector = 32.0 * p.share_sms * device.clock_hz / device.dram_bw;

    // Counters.
    let mut cycle: u64 = 0;
    let mut fp_active: u64 = 0;
    let mut issued: u64 = 0;
    let mut flops_wave: u64 = 0;
    let mut dram_bytes_wave: u64 = 0;
    let mut reg_conflicts: u64 = 0;
    let mut smem_conflict_cycles: u64 = 0;
    let mut yield_switches: u64 = 0;
    let mut idle_attr = [0u64; 5];
    // Stall-attribution profile: every scheduler-cycle of the wave is
    // charged to exactly one SASS line (or the empty bucket), so the
    // per-line sums reconcile with `schedulers * wave_cycles`.
    let mut prof: Option<Collector> = opts.profile.then(|| Collector::new(module, schedulers));
    // Hardware counters: same zero-cost gating as the profiler.
    let mut ctr: Option<CounterCollector> = opts.counters.then(|| {
        CounterCollector::new(
            schedulers,
            num_warps as u32,
            device.max_threads_per_sm / WARP_SIZE,
        )
    });
    // Region accounting.
    let mut region_first: Option<u64> = None;
    let mut region_last: u64 = 0;
    let mut region_fp_active: u64 = 0;

    // Live-warp counter (decremented on exit) replaces the old per-cycle
    // `slots.iter().any(..)` scan. Scratch buffers below are reused across
    // iterations so the scheduler pass performs no heap allocation.
    let mut live_warps = num_warps;
    let mut idle_idx: Vec<Option<usize>> = vec![None; schedulers];
    let mut sector_scratch: Vec<u64> = Vec::new();
    let mut guard_iter: u64 = 0;
    let max_cycles: u64 = 5_000_000_000;

    while live_warps > 0 {
        guard_iter += 1;
        if cycle > max_cycles || guard_iter > max_cycles {
            return Err(LaunchError::BadBlockShape(
                "timing simulation did not converge".into(),
            ));
        }
        // Deliver due scoreboard completions.
        while events.peek_time().is_some_and(|t| t <= cycle) {
            let (_, (warp, barrier), wb) = events.pop().unwrap();
            if let Some((reg0, mask, values)) = &wb {
                for (j, vals) in values.iter().enumerate() {
                    let reg = &mut slots[warp].warp.regs[*reg0 as usize + j];
                    for lane in 0..32 {
                        if mask & (1 << lane) != 0 {
                            reg[lane] = vals[lane];
                        }
                    }
                }
            }
            slots[warp].sb_release(barrier);
        }

        let mut issued_any = false;
        let mut recovering_any = false;
        for s in 0..schedulers {
            idle_idx[s] = None;
            if sched_free[s] > cycle {
                // Recovering from a warp switch or cleared yield flag; the
                // profile charges the slot to the line that caused it.
                if let Some(p) = prof.as_mut() {
                    if let Some(pc) = p.last_pc[s] {
                        p.class[s] = SchedClass::YieldRecover(pc);
                    }
                }
                recovering_any = true;
                continue;
            }
            // One scan over this scheduler's warps: count eligibles and
            // track the round-robin winner directly (the old loop collected
            // a candidate `Vec` per scheduler per cycle). Classify blockers
            // for the idle-attribution counters.
            let prev = last_warp[s];
            let start = prev.map_or(0, |p| p + 1) % num_warps;
            let mut eligible = 0usize;
            let mut prev_eligible = false;
            let mut best_key = usize::MAX;
            let mut best_w = 0usize;
            let mut blockers = [false; 5]; // barrier, sb, mio, stall, empty
                                           // Profiling: the line each first-blocked warp would issue next,
                                           // indexed by `StallCause`.
            let mut first_blocked: [Option<u32>; 5] = [None; 5];
            let profiling = prof.is_some();
            let mut note_block = |cause: StallCause, pc: Option<u32>| {
                if let Some(pc) = pc {
                    let slot = &mut first_blocked[cause as usize];
                    if slot.is_none() {
                        *slot = Some(pc);
                    }
                }
            };
            for &w in &sched_warps[s] {
                let slot = &slots[w];
                if slot.warp.exited {
                    continue;
                }
                if slot.at_barrier {
                    blockers[0] = true;
                    if profiling {
                        note_block(StallCause::Barrier, slot.cur_pc);
                    }
                    continue;
                }
                if slot.ready_at > cycle {
                    blockers[3] = true;
                    if profiling {
                        note_block(StallCause::StallCount, slot.cur_pc);
                    }
                    continue;
                }
                let Some(pc) = slot.cur_pc else { continue };
                let Some(desc) = table.get(pc as usize) else {
                    continue; // out-of-range PC is never schedulable
                };
                // Scoreboard waits: one mask test against the pending bits.
                if desc.wait_mask & slot.pending_mask != 0 {
                    blockers[1] = true;
                    if profiling {
                        note_block(StallCause::Scoreboard, Some(pc));
                    }
                    continue;
                }
                // Structural hazards.
                match desc.pipe {
                    PipeKind::Fp32 if fp_busy[s] > cycle => {
                        if profiling {
                            note_block(StallCause::PipeBusy, Some(pc));
                        }
                        continue;
                    }
                    PipeKind::Int if int_busy[s] > cycle => {
                        if profiling {
                            note_block(StallCause::PipeBusy, Some(pc));
                        }
                        continue;
                    }
                    PipeKind::Mio if mio_busy > cycle + 3 => {
                        blockers[2] = true;
                        if profiling {
                            note_block(StallCause::MioQueue, Some(pc));
                        }
                        continue;
                    }
                    _ => {}
                }
                // Candidate. Round-robin keys are distinct per warp, so
                // tracking the running minimum reproduces the old
                // `min_by_key` over a collected list exactly.
                eligible += 1;
                if prev == Some(w) {
                    prev_eligible = true;
                }
                let key = (w + num_warps - start) % num_warps;
                if key < best_key {
                    best_key = key;
                    best_w = w;
                }
            }
            if let Some(cc) = ctr.as_mut() {
                cc.eligible[s] = eligible;
            }
            if eligible == 0 {
                if fp_busy[s] <= cycle {
                    // Attribute the idle issue slot to the highest-priority
                    // blocker observed; remember the bucket so a skipped
                    // recovery window can bulk-charge its remaining cycles.
                    let idx = blockers.iter().position(|&b| b).unwrap_or(4);
                    idle_attr[idx] += 1;
                    idle_idx[s] = Some(idx);
                }
                if let Some(p) = prof.as_mut() {
                    // Charge the slot to the highest-priority blocked line;
                    // no blocked warp at all leaves the slot `Empty`.
                    if let Some(cause) = StallCause::ALL
                        .into_iter()
                        .find(|&c| first_blocked[c as usize].is_some())
                    {
                        p.class[s] =
                            SchedClass::Blocked(cause, first_blocked[cause as usize].unwrap());
                    }
                }
                continue;
            }
            issued_any = true;

            // Yield policy: prefer the last warp when its last instruction
            // had the yield flag set; otherwise round-robin away from it.
            let chosen = match prev {
                Some(p) if prev_eligible && slots[p].last_yield => p,
                _ => best_w,
            };
            let switched = prev != Some(chosen);
            if switched && prev.is_some() {
                yield_switches += 1;
                sched_free[s] = cycle + 2;
            } else {
                sched_free[s] = cycle + 1;
            }
            last_warp[s] = Some(chosen);

            // Issue: execute functionally.
            let block = slots[chosen].block;
            let ctaid = coords[block];
            let pc = slots[chosen].cur_pc.unwrap();
            let desc = &table[pc as usize];
            if opts.strict_writeback {
                // Direct poison detection: reading a register whose load has
                // not completed is a schedule hazard — report it precisely.
                for &(_, r) in desc.srcs() {
                    let regs = &slots[chosen].warp.regs[r.0 as usize];
                    for (lane, &rv) in regs.iter().enumerate() {
                        if rv == 0x7fba_dbad {
                            return Err(LaunchError::Exec(crate::exec::ExecError {
                                ctaid,
                                warp: (chosen % warps_per_block) as u32,
                                pc,
                                inst: sass::disasm::inst_text(&module.insts[pc as usize]),
                                msg: format!(
                                    "schedule hazard: {} lane {} read before its load completed (poison)",
                                    r, lane
                                ),
                            }));
                        }
                    }
                }
            }
            let (event, trace) = {
                let slot = &mut slots[chosen];
                let mut env = ExecEnv {
                    global: &mut *mem,
                    smem: &mut smems[block],
                    cbank,
                    ctaid,
                    block_dim: dims.block,
                };
                step(
                    &mut slot.warp,
                    &module.insts,
                    &mut env,
                    (chosen % warps_per_block) as u32,
                )
                .map_err(LaunchError::Exec)?
            };
            issued += 1;
            if let Some(p) = prof.as_mut() {
                p.issued(s, chosen, pc, cycle);
            }
            if let Some(cc) = ctr.as_mut() {
                cc.c.issued += 1;
                let pipe = match desc.pipe {
                    PipeKind::Fp32 => 0,
                    PipeKind::Int => 1,
                    PipeKind::Mio => 2,
                    PipeKind::Ctrl | PipeKind::None => 3,
                };
                cc.c.issued_by_pipe[pipe] += 1;
            }

            // Strict writeback: capture the freshly-loaded destination
            // registers, poison them, and defer the real values to the
            // scoreboard-completion event.
            let mut wb: Option<(u8, u32, Vec<[u32; 32]>)> = None;
            if opts.strict_writeback && !trace.is_store && trace.exec_mask != 0 {
                if let Some((reg0, nregs)) = desc.strict_ld {
                    let n = nregs as usize;
                    let mut vals = Vec::with_capacity(n);
                    let slot = &mut slots[chosen];
                    for j in 0..n {
                        let r = reg0 as usize + j;
                        vals.push(slot.warp.regs[r]);
                        for lane in 0..32 {
                            if trace.exec_mask & (1 << lane) != 0 {
                                slot.warp.regs[r][lane] = 0x7fba_dbad; // poison NaN
                            }
                        }
                    }
                    wb = Some((reg0, trace.exec_mask, vals));
                }
            }

            let in_region = desc.in_region;
            if in_region {
                if region_first.is_none() {
                    region_first = Some(cycle);
                }
                region_last = cycle;
            }

            // Account cost per pipe.
            let active_lanes = 32u64; // cost is per warp instruction
            let _ = active_lanes;
            match desc.pipe {
                PipeKind::Fp32 => {
                    let mut occ = 2u64;
                    let conflict = desc.bank_conflict(&slots[chosen].reuse_cache);
                    if conflict {
                        occ += 1;
                        reg_conflicts += 1;
                        if let Some(p) = prof.as_mut() {
                            p.bank_conflict(pc, 1);
                        }
                    }
                    if let Some(cc) = ctr.as_mut() {
                        cc.c.fp_issues += 1;
                        cc.c.fp_pipe_busy_cycles += occ;
                        if conflict {
                            cc.c.reg_bank_conflicts += 1;
                        }
                        // Operand-fetch reuse accounting: RZ never reads a
                        // bank (pre-filtered at decode), a latched register
                        // is served by the cache.
                        for &(sl, r) in desc.srcs() {
                            if slots[chosen].reuse_cache[sl as usize] == Some(r) {
                                cc.c.reuse_hits[sl as usize] += 1;
                            } else {
                                cc.c.reuse_misses[sl as usize] += 1;
                            }
                        }
                    }
                    fp_busy[s] = cycle + occ;
                    fp_active += 2; // useful cycles only
                    if in_region {
                        region_fp_active += 2;
                    }
                    flops_wave += desc.flops_x32;
                }
                PipeKind::Int => {
                    int_busy[s] = cycle + 2;
                }
                PipeKind::Mio => {
                    let start = mio_busy.max(cycle);
                    match desc.mem {
                        MemKind::Shared => {
                            let phases = smem_phases(&trace.shared_addrs, trace.width) as u64;
                            let ideal = (trace.width as u64 * trace.shared_addrs.len() as u64)
                                .div_ceil(128);
                            let extra = phases.saturating_sub(ideal.max(1));
                            smem_conflict_cycles += extra;
                            if extra > 0 {
                                if let Some(p) = prof.as_mut() {
                                    p.bank_conflict(pc, extra);
                                }
                            }
                            if let Some(cc) = ctr.as_mut() {
                                cc.c.smem_accesses += 1;
                                let wi = match trace.width {
                                    0..=4 => 0,
                                    8 => 1,
                                    _ => 2,
                                };
                                cc.c.smem_accesses_by_width[wi] += 1;
                                cc.c.smem_phases += phases;
                                cc.c.smem_extra_phases += extra;
                                // `phases - extra` keeps the per-access split
                                // exact even when predication leaves fewer
                                // phases than the conflict-free floor.
                                cc.c.smem_ideal_phases += phases - extra;
                                cc.c.smem_mio_cycles += phases.max(1);
                            }
                            mio_busy = start + phases.max(1);
                            let done = mio_busy + device.smem_latency as u64;
                            if let Some(b) = desc.write_bar {
                                slots[chosen].sb_add(b);
                                events.push(done, (chosen, b), wb.take());
                            }
                            if let Some(b) = desc.read_bar {
                                slots[chosen].sb_add(b);
                                events.push(mio_busy + 2, (chosen, b), None);
                            }
                        }
                        MemKind::Global => {
                            global_sectors_into(
                                &trace.global_addrs,
                                trace.width,
                                &mut sector_scratch,
                            );
                            let occ = (sector_scratch.len() as u64).div_ceil(4).max(1);
                            mio_busy = start + occ;
                            if let Some(cc) = ctr.as_mut() {
                                cc.c.global_accesses += 1;
                                cc.c.global_sectors += sector_scratch.len() as u64;
                                cc.c.global_mio_cycles += occ;
                            }
                            let mut worst = device.l1_latency as u64;
                            let mut service = 0.0f64;
                            for &sec in &sector_scratch {
                                if trace.is_store {
                                    // Write-through, no-allocate; keep L1
                                    // coherent by dropping the stale sector.
                                    l1.invalidate(sec * 32);
                                    let hit = l2.access(sec * 32);
                                    if !hit {
                                        dram_bytes_wave += 32;
                                        service += dram_cycles_per_sector;
                                    } else {
                                        service += l2_cycles_per_sector;
                                    }
                                    if let Some(cc) = ctr.as_mut() {
                                        if hit {
                                            cc.c.l2_sector_hits += 1;
                                        } else {
                                            cc.c.l2_sector_misses += 1;
                                            cc.c.dram_write_bytes += 32;
                                        }
                                    }
                                    continue;
                                }
                                if l1.access(sec * 32) {
                                    if let Some(cc) = ctr.as_mut() {
                                        cc.c.l1_sector_hits += 1;
                                    }
                                    continue; // L1 hit: no backend traffic
                                }
                                let hit = l2.access(sec * 32);
                                if !hit {
                                    dram_bytes_wave += 32;
                                    worst = worst.max(device.l2_miss_latency as u64);
                                    service += dram_cycles_per_sector;
                                } else {
                                    worst = worst.max(device.l2_hit_latency as u64);
                                    service += l2_cycles_per_sector;
                                }
                                if let Some(cc) = ctr.as_mut() {
                                    if hit {
                                        cc.c.l2_sector_hits += 1;
                                    } else {
                                        cc.c.l2_sector_misses += 1;
                                        cc.c.dram_read_bytes += 32;
                                    }
                                }
                            }
                            mem_q = mem_q.max(cycle as f64) + service;
                            // Completion cannot precede backend service.
                            let backend_done = mem_q as u64;
                            if trace.is_store {
                                // Stores: sources are read at MIO entry.
                                if let Some(b) = desc.read_bar {
                                    slots[chosen].sb_add(b);
                                    events.push(mio_busy + 2, (chosen, b), None);
                                }
                            } else {
                                let done = (mio_busy + worst).max(backend_done);
                                if let Some(b) = desc.write_bar {
                                    slots[chosen].sb_add(b);
                                    events.push(done, (chosen, b), wb.take());
                                }
                                if let Some(b) = desc.read_bar {
                                    slots[chosen].sb_add(b);
                                    events.push(mio_busy + 2, (chosen, b), None);
                                }
                            }
                        }
                        MemKind::NotMem => unreachable!(),
                    }
                }
                PipeKind::Ctrl | PipeKind::None => {
                    int_busy[s] = cycle + 1;
                }
            }

            // Control-code bookkeeping. A cleared yield flag costs the
            // scheduler one extra issue cycle beyond the switch preference
            // (§5.1.4: "this will take one more clock cycle") — an
            // unhidable slot loss, which is why the paper's "Natural"
            // strategy wins (§6.1).
            if !desc.yield_flag {
                sched_free[s] = sched_free[s].max(cycle + 3);
            }
            let slot = &mut slots[chosen];
            slot.ready_at = cycle + desc.stall_cycles;
            slot.last_yield = desc.yield_flag;
            // Update reuse cache: latch flagged operand registers (resolved
            // at decode to the first source occurrence per slot). A cleared
            // yield flag disables the instruction's own reuse latch (§5.1.4:
            // switching "disables the register reuse cache").
            for sl in 0..4 {
                if desc.reuse & (1 << sl) != 0 && desc.yield_flag {
                    slot.reuse_cache[sl] = desc.reuse_latch[sl];
                } else if desc.pipe == PipeKind::Fp32 {
                    slot.reuse_cache[sl] = None;
                }
            }
            slot.cur_pc = slot.warp.current_ctx().map(|c| c.pc);

            // Warps of a block occupy a contiguous slot range by
            // construction, so barrier scans touch only that range.
            let block_range =
                block * warps_per_block..((block + 1) * warps_per_block).min(num_warps);
            match event {
                StepEvent::Barrier => {
                    slot.at_barrier = true;
                    // Release when all live warps of the block arrived.
                    let (mut waiting, mut live_block) = (0, 0);
                    for w2 in block_range.clone() {
                        if !slots[w2].warp.exited {
                            live_block += 1;
                            if slots[w2].at_barrier {
                                waiting += 1;
                            }
                        }
                    }
                    if waiting == live_block {
                        for w2 in block_range {
                            slots[w2].at_barrier = false;
                        }
                    }
                }
                StepEvent::Exited => {
                    live_warps -= 1;
                    // May release a barrier the exiting warp was gating.
                    let (mut waiting, mut live_block) = (0, 0);
                    for w2 in block_range.clone() {
                        if !slots[w2].warp.exited {
                            live_block += 1;
                            if slots[w2].at_barrier {
                                waiting += 1;
                            }
                        }
                    }
                    if live_block > 0 && waiting == live_block {
                        for w2 in block_range {
                            slots[w2].at_barrier = false;
                        }
                    }
                }
                StepEvent::Executed => {}
            }
        }

        // Advance time. Three regimes:
        //   issue     — some scheduler issued; state changed, step 1 cycle.
        //   recovery  — nothing issued but a scheduler is inside a yield /
        //               switch window; skip straight to the first cycle at
        //               which anything can change.
        //   quiescent — nothing issued and no recovery window; jump to the
        //               next wake-up (ready warp, event, pipe drain) or
        //               report a deadlock.
        if issued_any {
            if let Some(p) = prof.as_mut() {
                p.commit(1);
            }
            if let Some(cc) = ctr.as_mut() {
                cc.commit(1);
            }
            cycle += 1;
        } else if recovering_any {
            // No scheduler can issue until one of: a sched_free window ends,
            // a pipe drains enough to accept, the MIO queue shortens below
            // the admission bound, a warp's stall count elapses, or a
            // scoreboard event lands. Each predicate flips exactly at the
            // bound included here, so every intermediate cycle would replay
            // this evaluation verbatim — skip them in one hop.
            let mut next = u64::MAX;
            for s in 0..schedulers {
                if sched_free[s] > cycle {
                    next = next.min(sched_free[s]);
                }
                if fp_busy[s] > cycle {
                    next = next.min(fp_busy[s]);
                }
                if int_busy[s] > cycle {
                    next = next.min(int_busy[s]);
                }
            }
            if mio_busy > cycle + 3 {
                next = next.min(mio_busy - 3);
            }
            for slot in &slots {
                if !slot.warp.exited && !slot.at_barrier && slot.ready_at > cycle {
                    next = next.min(slot.ready_at);
                }
            }
            if let Some(t) = events.peek_time() {
                next = next.min(t);
            }
            // `recovering_any` guarantees at least one sched_free bound, so
            // `next` is finite and strictly ahead of `cycle`.
            let span = next - cycle;
            if let Some(p) = prof.as_mut() {
                p.commit(span);
            }
            if let Some(cc) = ctr.as_mut() {
                cc.commit(span);
            }
            if span > 1 {
                // The cycle-by-cycle loop re-attributed each idle issue slot
                // every cycle of the window; bulk-charge the remainder.
                for idx in idle_idx.iter().take(schedulers).flatten() {
                    idle_attr[*idx] += span - 1;
                }
            }
            cycle = next;
        } else {
            let mut next = u64::MAX;
            for s in 0..schedulers {
                if fp_busy[s] > cycle {
                    next = next.min(fp_busy[s]);
                }
                if int_busy[s] > cycle {
                    next = next.min(int_busy[s]);
                }
            }
            if mio_busy > cycle {
                next = next.min(mio_busy);
            }
            for slot in &slots {
                if !slot.warp.exited && !slot.at_barrier && slot.ready_at > cycle {
                    next = next.min(slot.ready_at);
                }
            }
            if let Some(t) = events.peek_time() {
                next = next.min(t);
            }
            if next == u64::MAX {
                if live_warps > 0 {
                    return Err(LaunchError::BadBlockShape(
                        "timing deadlock: live warps but nothing schedulable".into(),
                    ));
                }
                break;
            }
            let new_cycle = next.max(cycle + 1);
            // The blocked/empty classification holds for the whole jumped
            // window: nothing changes before `next` by construction.
            if let Some(p) = prof.as_mut() {
                p.commit(new_cycle - cycle);
            }
            if let Some(cc) = ctr.as_mut() {
                // During a jumped window no scheduler had an eligible warp,
                // so the scratch (reset to zero) classification holds.
                cc.commit(new_cycle - cycle);
            }
            cycle = new_cycle;
        }
    }

    // Residual backend backlog carried to the SM's next wave (one-wave
    // callers discard it).
    carry.mem_q = (mem_q - cycle as f64).max(0.0);
    Ok(WaveOutput {
        cycles: cycle,
        fp_active,
        issued,
        flops: flops_wave,
        dram_bytes: dram_bytes_wave,
        reg_conflicts,
        smem_conflict_cycles,
        yield_switches,
        idle_attr,
        region_first,
        region_last,
        region_fp_active,
        prof,
        ctr,
    })
}

/// Functionally execute one block, inserting every global-memory sector it
/// touches into the L2 model (steady-state warm-up for the timed wave).
fn warm_l2(
    mem: &mut GlobalMemory,
    module: &Module,
    cbank: &ConstBank,
    ctaid: [u32; 3],
    block_dim: [u32; 3],
    l2: &mut L2Cache,
) -> Result<(), LaunchError> {
    let tpb = block_dim[0] * block_dim[1] * block_dim[2];
    let num_warps = tpb.div_ceil(WARP_SIZE);
    let mut smem = vec![0u8; module.info.smem_bytes as usize];
    let mut warps: Vec<Warp> = (0..num_warps)
        .map(|w| {
            let base = w * WARP_SIZE;
            let lanes = (tpb - base).min(WARP_SIZE);
            Warp::new(module.info.num_regs.max(1), base, lanes)
        })
        .collect();
    let mut at_barrier = vec![false; num_warps as usize];
    let mut steps: u64 = 0;
    const WARM_STEP_LIMIT: u64 = 500_000_000;
    loop {
        let mut all_done = true;
        for w in 0..num_warps as usize {
            if warps[w].exited || at_barrier[w] {
                all_done &= warps[w].exited;
                continue;
            }
            all_done = false;
            loop {
                steps += 1;
                if steps > WARM_STEP_LIMIT {
                    return Err(LaunchError::BadBlockShape(
                        "warm-up block exceeded the instruction-step limit (infinite loop?)".into(),
                    ));
                }
                let mut env = ExecEnv {
                    global: &mut *mem,
                    smem: &mut smem,
                    cbank,
                    ctaid,
                    block_dim,
                };
                let (event, trace) =
                    step(&mut warps[w], module.insts.as_slice(), &mut env, w as u32)
                        .map_err(LaunchError::Exec)?;
                for sec in global_sectors(&trace.global_addrs, trace.width.max(1)) {
                    l2.access(sec * 32);
                }
                match event {
                    StepEvent::Executed => {}
                    StepEvent::Barrier => {
                        at_barrier[w] = true;
                        break;
                    }
                    StepEvent::Exited => break,
                }
            }
        }
        if all_done {
            return Ok(());
        }
        let waiting = at_barrier.iter().filter(|&&b| b).count();
        let live = warps.iter().filter(|w| !w.exited).count();
        if live > 0 && waiting == live {
            at_barrier.iter_mut().for_each(|b| *b = false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;
    use crate::memory::ParamBuilder;
    use sass::assemble;

    #[test]
    fn smem_phase_math() {
        // 32 lanes, consecutive 4B: one phase, no conflict.
        let addrs: Vec<u32> = (0..32).map(|l| l * 4).collect();
        assert_eq!(smem_phases(&addrs, 4), 1);
        // All lanes hit the same bank, different words: 32-way conflict.
        let addrs: Vec<u32> = (0..32).map(|l| l * 128).collect();
        assert_eq!(smem_phases(&addrs, 4), 32);
        // Broadcast: all lanes same word: 1 phase.
        let addrs: Vec<u32> = vec![64; 32];
        assert_eq!(smem_phases(&addrs, 4), 1);
        // 128-bit, lanes consecutive 16B: 4 phases of 8 lanes, each phase
        // covers all 32 banks once.
        let addrs: Vec<u32> = (0..32).map(|l| l * 16).collect();
        assert_eq!(smem_phases(&addrs, 16), 4);
        // 128-bit, all lanes load the same 16B: still 4 phases (broadcast).
        let addrs: Vec<u32> = vec![0; 32];
        assert_eq!(smem_phases(&addrs, 16), 4);
        // 128-bit with a 2-way conflict inside each phase: within each
        // 8-lane phase, half the lanes sit 512 B away (same banks, different
        // words).
        let addrs: Vec<u32> = (0..32).map(|l| (l % 4) * 16 + (l % 8 / 4) * 512).collect();
        assert_eq!(smem_phases(&addrs, 16), 8);
        // ...whereas a uniform 512 B split across *phases* is conflict-free.
        let addrs: Vec<u32> = (0..32).map(|l| (l % 8) * 16 + (l / 8 % 2) * 512).collect();
        assert_eq!(smem_phases(&addrs, 16), 4);
        // 128-bit at a 4 B-misaligned base: each lane's four words rotate
        // the bank assignment but still cover each bank exactly once per
        // phase — crossing the bank "pair" boundary alone is free.
        let addrs: Vec<u32> = (0..32).map(|l| l * 16 + 8).collect();
        assert_eq!(smem_phases(&addrs, 16), 4);
        // 128-bit at stride 20 (misaligned *and* drifting): within every
        // 8-lane phase the 33rd-word wraparound doubles up four banks.
        let addrs: Vec<u32> = (0..32).map(|l| l * 20).collect();
        assert_eq!(smem_phases(&addrs, 16), 8);
        // 64-bit broadcast: both half-warp phases read the same word pair.
        let addrs: Vec<u32> = vec![0; 32];
        assert_eq!(smem_phases(&addrs, 8), 2);
        // Predicated-off access (no active lanes) takes no phases.
        assert_eq!(smem_phases(&[], 4), 0);
    }

    #[test]
    fn sector_coalescing() {
        // Fully coalesced 32×4B: 4 sectors.
        let addrs: Vec<u64> = (0..32).map(|l| 0x1000 + l * 4).collect();
        assert_eq!(global_sectors(&addrs, 4).len(), 4);
        // Strided by 128: 32 sectors.
        let addrs: Vec<u64> = (0..32).map(|l| 0x1000 + l * 128).collect();
        assert_eq!(global_sectors(&addrs, 4).len(), 32);
        // 128-bit coalesced: 16 sectors.
        let addrs: Vec<u64> = (0..32).map(|l| 0x1000 + l * 16).collect();
        assert_eq!(global_sectors(&addrs, 16).len(), 16);
        // Unaligned 128-bit: a 16 B read at sector offset 24 splits across
        // two sectors; at stride 32 the splits chain into 33 distinct
        // sectors — one more than the access count.
        let addrs: Vec<u64> = (0..32).map(|l| 0x1000 + l * 32 + 24).collect();
        assert_eq!(global_sectors(&addrs, 16).len(), 33);
        // Misaligned but within one sector: offset 8 still fits 8..24.
        let addrs: Vec<u64> = (0..32).map(|l| 0x1000 + l * 32 + 8).collect();
        assert_eq!(global_sectors(&addrs, 16).len(), 32);
        // Broadcast: every lane reads the same word — one sector.
        let addrs: Vec<u64> = vec![0x1000; 32];
        assert_eq!(global_sectors(&addrs, 4).len(), 1);
    }

    /// A pure-FFMA kernel should run the FP32 pipe near 100% and achieve
    /// close to peak TFLOPS.
    #[test]
    fn ffma_kernel_approaches_peak() {
        // 8 warps/SM, each issuing a long stream of independent FFMAs.
        let mut body = String::from(".kernel peak\n");
        body.push_str("MOV R2, 0x3f800000;\nMOV R3, 0x3f800000;\n");
        body.push_str("MOV R63, 0x200;\nLOOP:\n");
        for i in 0..64 {
            let d = 4 + (i % 32);
            body.push_str(&format!("--:-:-:Y:1  FFMA R{d}, R2, R3, R{d};\n"));
        }
        body.push_str("IADD3 R63, R63, -1, RZ;\n");
        body.push_str("ISETP.GT.AND P0, PT, R63, 0, PT;\n");
        body.push_str("--:-:-:Y:5  @P0 BRA `(LOOP);\nEXIT;\n");
        let m = assemble(&body).unwrap();
        let mut gpu = Gpu::new(DeviceSpec::rtx2070(), 1 << 20);
        // Grid sized to one full wave at the computed occupancy (4 blocks
        // of 256 threads per SM × 36 SMs).
        let t = time_kernel(
            &mut gpu,
            &m,
            LaunchDims::linear(144, 256),
            &[],
            TimingOptions::default(),
        )
        .unwrap();
        let peak = DeviceSpec::rtx2070().peak_fp32_flops() / 1e12;
        assert!(
            t.tflops > 0.85 * peak && t.tflops <= peak * 1.01,
            "tflops {} vs peak {peak}",
            t.tflops
        );
        assert!(t.sol_pct > 85.0, "SOL {}", t.sol_pct);
    }

    /// Register-bank conflicts must slow the FP pipe measurably, and the
    /// reuse flag must recover the loss.
    #[test]
    fn bank_conflicts_and_reuse() {
        let build = |conflict: bool, reuse: bool| {
            let mut body = String::from(".kernel bk\nMOV R63, 0x100;\nLOOP:\n");
            for i in 0..32 {
                let d = 4 + i;
                // Sources R2, R4, R6 all even = conflict; R2, R5 mixed = none.
                let (a, b, c) = if conflict { (2, 4, 6) } else { (2, 5, 6) };
                let r = if reuse { ".reuse" } else { "" };
                body.push_str(&format!("--:-:-:Y:1  FFMA R{d}, R{a}, R{b}{r}, R{c};\n"));
            }
            body.push_str("IADD3 R63, R63, -1, RZ;\nISETP.GT.AND P0, PT, R63, 0, PT;\n@P0 BRA `(LOOP);\nEXIT;\n");
            assemble(&body).unwrap()
        };
        let run = |m: &sass::Module| {
            let mut gpu = Gpu::new(DeviceSpec::rtx2070(), 1 << 20);
            time_kernel(
                &mut gpu,
                m,
                LaunchDims::linear(36, 256),
                &[],
                TimingOptions::default(),
            )
            .unwrap()
        };
        let clean = run(&build(false, false));
        let conflicted = run(&build(true, false));
        let reused = run(&build(true, true));
        assert!(
            conflicted.wave_cycles as f64 > 1.3 * clean.wave_cycles as f64,
            "conflict {} vs clean {}",
            conflicted.wave_cycles,
            clean.wave_cycles
        );
        // Reuse covers the repeated operand, removing the conflict.
        assert!(
            (reused.wave_cycles as f64) < 1.1 * clean.wave_cycles as f64,
            "reused {} vs clean {}",
            reused.wave_cycles,
            clean.wave_cycles
        );
        assert!(conflicted.reg_bank_conflict_cycles > 0);
        // Only cold-start FFMAs (empty reuse cache) may conflict when reuse
        // is on; steady state must be clean.
        assert!(
            reused.reg_bank_conflict_cycles * 100 < conflicted.reg_bank_conflict_cycles,
            "reused {} conflicted {}",
            reused.reg_bank_conflict_cycles,
            conflicted.reg_bank_conflict_cycles
        );
    }

    /// A streaming-load kernel must be DRAM-bandwidth-bound.
    #[test]
    fn streaming_load_hits_bandwidth_wall() {
        let m = assemble(
            r#"
.kernel stream
.params 16
    --:-:-:Y:1  S2R R0, SR_TID.X;
    --:-:-:Y:1  S2R R1, SR_CTAID.X;
    --:-:-:Y:6  MOV R10, c[0x0][0x160];
    --:-:-:Y:6  MOV R11, c[0x0][0x164];
    --:-:-:Y:6  IMAD R2, R1, 0x100, R0;
    --:-:-:Y:6  IMAD.WIDE.U32 R2, R2, 0x10, R10;
    --:-:0:-:2  LDG.E.128 R4, [R2];
    01:-:-:Y:4  FADD R8, R4, R5;
    --:-:-:Y:6  IMAD.WIDE.U32 R4, R1, 0x4, R10;
    --:-:-:Y:2  STG.E [R4], R8;
    --:-:-:Y:5  EXIT;
"#,
        )
        .unwrap();
        let mut gpu = Gpu::new(DeviceSpec::v100(), 1 << 28);
        let blocks = 4096u32;
        let buf = gpu.alloc(blocks as u64 * 256 * 16);
        let params = ParamBuilder::new().push_ptr(buf).build();
        let t = time_kernel(
            &mut gpu,
            &m,
            LaunchDims::linear(blocks, 256),
            &params,
            TimingOptions::default(),
        )
        .unwrap();
        // Each block loads 256 × 16 B = 4 KiB of unique data.
        assert!(
            t.dram_bytes as f64 > 0.8 * blocks as f64 * 4096.0,
            "dram {}",
            t.dram_bytes
        );
        // The DRAM bound should be a visible fraction of the total time.
        assert!(
            t.dram_time_s > 0.2 * t.time_s,
            "dram {} total {}",
            t.dram_time_s,
            t.time_s
        );
    }

    /// More resident warps hide memory latency better: occupancy 2 beats
    /// occupancy 1 for a latency-bound kernel (the §7.1 mechanism).
    #[test]
    fn occupancy_hides_latency() {
        let m = assemble(
            r#"
.kernel lat
.params 16
    --:-:-:Y:1  S2R R0, SR_TID.X;
    --:-:-:Y:1  S2R R1, SR_CTAID.X;
    --:-:-:Y:6  MOV R10, c[0x0][0x160];
    --:-:-:Y:6  MOV R11, c[0x0][0x164];
    --:-:-:Y:6  MOV R20, 0x20;
    --:-:-:Y:6  IMAD R2, R1, 0x40, R0;
    --:-:-:Y:6  IMAD.WIDE.U32 R2, R2, 0x4, R10;
LOOP:
    --:-:0:-:2  LDG.E R4, [R2];
    01:-:-:Y:4  FADD R8, R8, R4;
    --:-:-:Y:4  IADD3 R20, R20, -1, RZ;
    --:-:-:Y:4  ISETP.GT.AND P0, PT, R20, 0, PT;
    --:-:-:Y:5  @P0 BRA `(LOOP);
    --:-:-:Y:2  STG.E [R2], R8;
    --:-:-:Y:5  EXIT;
"#,
        )
        .unwrap();
        let run = |resident: u32| {
            let mut gpu = Gpu::new(DeviceSpec::v100(), 1 << 24);
            let buf = gpu.alloc(1 << 20);
            let params = ParamBuilder::new().push_ptr(buf).build();
            time_kernel(
                &mut gpu,
                &m,
                LaunchDims::linear(160, 64),
                &params,
                TimingOptions {
                    blocks_per_sm: Some(resident),
                    ..Default::default()
                },
            )
            .unwrap()
        };
        let occ1 = run(1);
        let occ2 = run(2);
        // Two resident blocks per SM halve the wave count and overlap
        // latency; total time must improve.
        assert!(
            occ2.time_s < 0.8 * occ1.time_s,
            "occ2 {} vs occ1 {}",
            occ2.time_s,
            occ1.time_s
        );
    }

    /// The functional result produced during a timing run matches launch().
    #[test]
    fn timing_run_is_functionally_correct() {
        let m = assemble(
            r#"
.kernel sq
.params 16
    --:-:-:Y:1  S2R R0, SR_TID.X;
    --:-:-:Y:1  S2R R1, SR_CTAID.X;
    --:-:-:Y:6  MOV R10, c[0x0][0x160];
    --:-:-:Y:6  MOV R11, c[0x0][0x164];
    --:-:-:Y:6  IMAD R2, R1, 0x20, R0;
    --:-:-:Y:6  IMAD.WIDE.U32 R2, R2, 0x4, R10;
    --:-:0:-:2  LDG.E R4, [R2];
    01:-:-:Y:4  FMUL R4, R4, R4;
    --:-:-:Y:2  STG.E [R2], R4;
    --:-:-:Y:5  EXIT;
"#,
        )
        .unwrap();
        let mut gpu = Gpu::new(DeviceSpec::v100(), 1 << 20);
        let x: Vec<f32> = (0..64).map(|i| i as f32).collect();
        let xp = gpu.alloc_upload_f32(&x);
        let params = ParamBuilder::new().push_ptr(xp).build();
        // Grid of 2 blocks × 32 threads; V100 has 80 SMs so one wave covers
        // everything and both blocks are simulated.
        time_kernel(
            &mut gpu,
            &m,
            LaunchDims::linear(2, 32),
            &params,
            TimingOptions::default(),
        )
        .unwrap();
        let out = gpu.mem.download_f32(xp, 64).unwrap();
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, (i * i) as f32);
        }
    }
}
