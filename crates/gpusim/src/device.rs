//! Device descriptions and the occupancy calculator.
//!
//! Two devices matter to the paper: the Volta **V100** and the Turing
//! **RTX 2070**. The micro-architectural constants below are taken from the
//! paper (§7.1, Table 7 discussion), the Turing whitepaper it cites, and the
//! Volta microbenchmarking study it relies on (Jia et al. 2018).

/// Architecture generation (identical pipeline model, different limits).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Arch {
    Volta,
    Turing,
}

/// Static description of a GPU.
#[derive(Clone, Debug)]
pub struct DeviceSpec {
    pub name: &'static str,
    pub arch: Arch,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// Core clock in Hz used for time conversion.
    pub clock_hz: f64,
    /// FP32 lanes per SM (V100/TU106: 64, i.e. 16 per scheduler).
    pub fp32_lanes_per_sm: u32,
    /// Warp schedulers (processing blocks) per SM.
    pub schedulers_per_sm: u32,
    /// 32-bit registers per SM.
    pub regs_per_sm: u32,
    /// Maximum registers addressable per thread (§5.2.1: 255 architectural,
    /// ≤253 usable in practice — footnote 7).
    pub max_regs_per_thread: u32,
    /// Maximum shared memory per SM, bytes (V100: 96 KiB, Turing: 64 KiB —
    /// the §7.1 occupancy argument).
    pub smem_per_sm: u32,
    /// Maximum threads resident per SM (Volta: 2048, Turing: 1024).
    pub max_threads_per_sm: u32,
    /// Maximum thread blocks resident per SM.
    pub max_blocks_per_sm: u32,
    /// DRAM bandwidth, bytes/s.
    pub dram_bw: f64,
    /// Aggregate L2 bandwidth, bytes/s (the paper's Fig. 2 draws 2.5 TB/s
    /// for V100).
    pub l2_bw: f64,
    /// L2 capacity, bytes.
    pub l2_bytes: u64,
    /// L2 hit latency, cycles.
    pub l2_hit_latency: u32,
    /// L2 miss (DRAM) latency, cycles.
    pub l2_miss_latency: u32,
    /// Shared-memory load latency, cycles (§3.4: "around 20").
    pub smem_latency: u32,
    /// Combined L1/shared-memory capacity per SM, bytes (Volta: 128 KiB;
    /// Turing: 96 KiB). What shared memory doesn't claim serves as L1.
    pub l1_smem_combined: u32,
    /// L1 hit latency, cycles.
    pub l1_latency: u32,
}

impl DeviceSpec {
    /// Tesla V100 (SXM2): 80 SMs @ 1530 MHz, 15.7 TFLOPS fp32, 900 GB/s HBM2.
    pub fn v100() -> Self {
        DeviceSpec {
            name: "V100",
            arch: Arch::Volta,
            num_sms: 80,
            clock_hz: 1.530e9,
            fp32_lanes_per_sm: 64,
            schedulers_per_sm: 4,
            regs_per_sm: 65536,
            max_regs_per_thread: 253,
            smem_per_sm: 96 * 1024,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            dram_bw: 900.0e9,
            l2_bw: 2.5e12,
            l2_bytes: 6 * 1024 * 1024,
            l2_hit_latency: 193,
            l2_miss_latency: 450,
            smem_latency: 24,
            l1_smem_combined: 128 * 1024,
            l1_latency: 32,
        }
    }

    /// GeForce RTX 2070 (TU106): 36 SMs @ ~1620 MHz boost, ~7.5 TFLOPS fp32,
    /// 448 GB/s GDDR6. Shared memory is capped at 64 KiB per SM (§7.1).
    pub fn rtx2070() -> Self {
        DeviceSpec {
            name: "RTX2070",
            arch: Arch::Turing,
            num_sms: 36,
            clock_hz: 1.620e9,
            fp32_lanes_per_sm: 64,
            schedulers_per_sm: 4,
            regs_per_sm: 65536,
            max_regs_per_thread: 253,
            smem_per_sm: 64 * 1024,
            max_threads_per_sm: 1024,
            max_blocks_per_sm: 16,
            dram_bw: 448.0e9,
            l2_bw: 1.8e12,
            l2_bytes: 4 * 1024 * 1024,
            l2_hit_latency: 188,
            l2_miss_latency: 420,
            smem_latency: 22,
            l1_smem_combined: 96 * 1024,
            l1_latency: 32,
        }
    }

    /// Peak single-precision throughput, FLOP/s (2 FLOPs per FFMA lane-op).
    pub fn peak_fp32_flops(&self) -> f64 {
        self.num_sms as f64 * self.fp32_lanes_per_sm as f64 * 2.0 * self.clock_hz
    }

    /// Resident thread blocks per SM for a kernel footprint, per the CUDA
    /// occupancy rules. Returns 0 if the kernel cannot launch at all.
    pub fn blocks_per_sm(
        &self,
        threads_per_block: u32,
        regs_per_thread: u32,
        smem_per_block: u32,
    ) -> u32 {
        if threads_per_block == 0 || threads_per_block > self.max_threads_per_sm {
            return 0;
        }
        if regs_per_thread > self.max_regs_per_thread {
            return 0;
        }
        if smem_per_block > self.smem_per_sm {
            return 0;
        }
        let by_threads = self.max_threads_per_sm / threads_per_block;
        // Register allocation granularity: warps allocate registers in units
        // of 8 regs/thread (256 per warp).
        let regs_rounded = regs_per_thread.div_ceil(8) * 8;
        let regs_per_block = regs_rounded.max(32) * threads_per_block;
        let by_regs = self.regs_per_sm / regs_per_block;
        let by_smem = self
            .smem_per_sm
            .checked_div(smem_per_block)
            .unwrap_or(self.max_blocks_per_sm);
        by_threads
            .min(by_regs)
            .min(by_smem)
            .min(self.max_blocks_per_sm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_flops_match_datasheets() {
        let v = DeviceSpec::v100().peak_fp32_flops();
        assert!((v - 15.7e12).abs() / 15.7e12 < 0.01, "{v}");
        let t = DeviceSpec::rtx2070().peak_fp32_flops();
        assert!((t - 7.46e12).abs() / 7.46e12 < 0.01, "{t}");
    }

    #[test]
    fn paper_kernel_occupancy_table7() {
        // Our kernel: 256 threads, 253 regs, 48 KiB smem.
        // cuDNN's: 256 threads, 126 regs, 48 KiB smem.
        let v100 = DeviceSpec::v100();
        let t2070 = DeviceSpec::rtx2070();
        // §7.1: cuDNN's Winograd gets 2 blocks/SM on V100 but 1 on RTX 2070
        // (the 96 KiB vs 64 KiB shared-memory limit).
        assert_eq!(v100.blocks_per_sm(256, 126, 48 * 1024), 2);
        assert_eq!(t2070.blocks_per_sm(256, 126, 48 * 1024), 1);
        // Ours is register-bound to 1 block/SM everywhere (64768 regs/block).
        assert_eq!(v100.blocks_per_sm(256, 253, 48 * 1024), 1);
        assert_eq!(t2070.blocks_per_sm(256, 253, 48 * 1024), 1);
    }

    #[test]
    fn over_limit_kernels_cannot_launch() {
        let d = DeviceSpec::rtx2070();
        assert_eq!(d.blocks_per_sm(256, 254, 0), 0);
        assert_eq!(d.blocks_per_sm(256, 32, 80 * 1024), 0);
        assert_eq!(d.blocks_per_sm(2048, 32, 0), 0);
        assert_eq!(d.blocks_per_sm(0, 32, 0), 0);
    }

    #[test]
    fn small_kernels_hit_thread_or_block_limits() {
        let d = DeviceSpec::v100();
        // Tiny kernel: bounded by max blocks/SM.
        assert_eq!(d.blocks_per_sm(32, 16, 0), 32);
        // 1024-thread blocks: two fit by threads.
        assert_eq!(d.blocks_per_sm(1024, 32, 0), 2);
    }
}
