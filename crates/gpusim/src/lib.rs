//! `gpusim` — a functional and cycle-level simulator of the NVIDIA
//! Volta/Turing SM micro-architecture.
//!
//! This crate is the hardware substrate for the Winograd reproduction: the
//! paper's experiments run on a V100 and an RTX 2070, and every optimization
//! it studies is a property of mechanisms this simulator implements
//! explicitly:
//!
//! * 4 warp schedulers per SM with the **yield-flag** issue policy (§5.1.4,
//!   §6.1) — one extra cycle and loss of the reuse cache on a warp switch;
//! * two 64-bit **register banks** with operand **reuse caches** (§5.2.2):
//!   a 3-source FFMA whose operands collide in one bank occupies the FP32
//!   pipe for an extra cycle unless `.reuse` covers the collision;
//! * 32-bank **shared memory** with exact conflict detection, including the
//!   two-phase service of `LDS.128` (the subtlety behind the paper's Fig. 3
//!   lane arrangement);
//! * **scoreboard wait barriers** (6 per warp) and stall counts from each
//!   instruction's control code — the hardware trusts the assembler;
//! * an L2/DRAM model with sector-level coalescing and bandwidth accounting;
//! * CUDA **occupancy** rules (registers / shared memory / thread limits)
//!   that reproduce the V100-vs-RTX2070 difference of §7.1.
//!
//! Functional execution ([`exec`], [`launch`]) is exact. Timing has two
//! levels sharing one cycle-level wave loop: [`timing`] times a single wave
//! of resident blocks on one SM and extrapolates analytically across waves
//! (the cheap inner-loop model, exact on grids that are a whole multiple of
//! full waves), while [`device_sim`] dispatches every block of the launch to
//! its SM and simulates all SMs — event-driven via [`timeq`], sharded across
//! worker threads with a deterministic merge — so partial last waves and
//! tail imbalance are timed instead of rounded up.

pub mod batch;
pub mod counters;
pub(crate) mod decode;
pub mod device;
pub mod device_sim;
pub mod digest;
pub mod exec;
pub mod launch;
pub mod memory;
pub mod simprof;
pub mod timeq;
pub mod timing;

pub use batch::BatchTimer;
pub use counters::HwCounters;
pub use device::{Arch, DeviceSpec};
pub use device_sim::{
    time_kernel_device, time_kernel_device_traced, DeviceOptions, DeviceTrace, WaveSpan,
};
pub use digest::{timing_digest, Digest, TIMING_MODEL_VERSION};
pub use exec::{ExecEnv, ExecError, StepEvent, Warp, WARP_SIZE};
pub use launch::{ExecCounters, Gpu, LaunchDims, LaunchError};
pub use memory::{ConstBank, DevPtr, GlobalMemory, MemError, ParamBuilder, PARAM_BASE};
pub use simprof::{IssueEvent, KernelProfile, LineProfile, Region, StallBreakdown, StallCause};
pub use timeq::TimeQueue;
pub use timing::{KernelTiming, TimingOptions};
