//! Functional grid launch: run every thread block of a kernel to completion.
//!
//! Blocks are independent (CUDA semantics); within a block, warps are
//! co-scheduled cooperatively and `BAR.SYNC` is honoured. The parallel
//! launcher distributes blocks across host threads with `std::thread::scope`.

use sass::Module;

use crate::device::DeviceSpec;
use crate::exec::{step, ExecEnv, ExecError, MemTrace, StepEvent, Warp, WARP_SIZE};
use crate::memory::{ConstBank, DevPtr, GlobalMemory};
use crate::timing::{global_sectors, smem_phases};

/// Grid/block shape for a launch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LaunchDims {
    pub grid: [u32; 3],
    pub block: [u32; 3],
}

impl LaunchDims {
    pub fn new(grid: [u32; 3], block: [u32; 3]) -> Self {
        LaunchDims { grid, block }
    }

    /// 1-D helper.
    pub fn linear(grid: u32, block: u32) -> Self {
        LaunchDims {
            grid: [grid, 1, 1],
            block: [block, 1, 1],
        }
    }

    pub fn threads_per_block(&self) -> u32 {
        self.block[0] * self.block[1] * self.block[2]
    }

    pub fn num_blocks(&self) -> u64 {
        self.grid[0] as u64 * self.grid[1] as u64 * self.grid[2] as u64
    }
}

/// Launch-time validation errors.
#[derive(Clone, Debug)]
pub enum LaunchError {
    /// Kernel exceeds the per-thread register limit (§5.2.1 footnote 7).
    TooManyRegisters { used: u16, limit: u32 },
    /// Static shared memory exceeds the device maximum.
    TooMuchSharedMem { used: u32, limit: u32 },
    /// Block too large.
    BadBlockShape(String),
    /// A warp faulted.
    Exec(ExecError),
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchError::TooManyRegisters { used, limit } => {
                write!(
                    f,
                    "kernel uses {used} registers/thread, device limit is {limit}"
                )
            }
            LaunchError::TooMuchSharedMem { used, limit } => {
                write!(
                    f,
                    "kernel uses {used} B shared memory, device limit is {limit}"
                )
            }
            LaunchError::BadBlockShape(s) => write!(f, "bad block shape: {s}"),
            LaunchError::Exec(e) => write!(f, "execution fault: {e}"),
        }
    }
}

impl std::error::Error for LaunchError {}

/// Memory-shape counters of a functional launch — the `exec`-path sibling of
/// [`crate::HwCounters`], for kernels run via [`Gpu::launch_counted`] where
/// the timing model never sees the addresses (e.g. the transform kernels the
/// harness executes only functionally). Counts cover the *whole grid*, one
/// entry per executed memory instruction with at least one active lane
/// (fully predicated-off accesses leave no trace on this path).
///
/// Exactness invariants: `smem_phases == smem_ideal_phases +
/// smem_extra_phases`, `global_sectors == global_load_sectors +
/// global_store_sectors`, and on a grid the timed wave fully covers, the
/// per-access phase and sector analysis agrees exactly with the counters
/// `time_kernel` collects (asserted by `gpusim/tests/counter_invariants.rs`)
/// — both paths call the same [`smem_phases`] / [`global_sectors`] analysis.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExecCounters {
    /// Thread blocks executed.
    pub blocks: u64,
    /// Shared-memory warp accesses (LDS + STS).
    pub smem_accesses: u64,
    /// Total MIO phases the shared accesses would need (bank-exact).
    pub smem_phases: u64,
    /// Conflict-free phase floor.
    pub smem_ideal_phases: u64,
    /// Extra phases from bank conflicts.
    pub smem_extra_phases: u64,
    /// Global-memory warp accesses (LDG + STG).
    pub global_accesses: u64,
    /// Distinct 32 B sectors the global accesses touched (post-coalescing).
    pub global_sectors: u64,
    /// Sector count from loads only.
    pub global_load_sectors: u64,
    /// Sector count from stores only.
    pub global_store_sectors: u64,
}

impl ExecCounters {
    fn record(&mut self, t: &MemTrace) {
        if !t.shared_addrs.is_empty() {
            let phases = smem_phases(&t.shared_addrs, t.width) as u64;
            let ideal = (t.width as u64 * t.shared_addrs.len() as u64).div_ceil(128);
            let extra = phases.saturating_sub(ideal.max(1));
            self.smem_accesses += 1;
            self.smem_phases += phases;
            self.smem_extra_phases += extra;
            self.smem_ideal_phases += phases - extra;
        }
        if !t.global_addrs.is_empty() {
            let sectors = global_sectors(&t.global_addrs, t.width).len() as u64;
            self.global_accesses += 1;
            self.global_sectors += sectors;
            if t.is_store {
                self.global_store_sectors += sectors;
            } else {
                self.global_load_sectors += sectors;
            }
        }
    }

    /// Check the documented internal identities.
    pub fn validate(&self) -> Result<(), String> {
        if self.smem_phases != self.smem_ideal_phases + self.smem_extra_phases {
            return Err(format!(
                "smem_phases {} != ideal {} + extra {}",
                self.smem_phases, self.smem_ideal_phases, self.smem_extra_phases
            ));
        }
        if self.global_sectors != self.global_load_sectors + self.global_store_sectors {
            return Err(format!(
                "global_sectors {} != load {} + store {}",
                self.global_sectors, self.global_load_sectors, self.global_store_sectors
            ));
        }
        Ok(())
    }
}

/// A simulated GPU: device description plus its global memory.
pub struct Gpu {
    pub device: DeviceSpec,
    pub mem: GlobalMemory,
}

/// Per-warp instruction-step budget to catch runaway kernels.
const STEP_LIMIT: u64 = 500_000_000;

impl Gpu {
    /// A GPU with the given arena capacity.
    pub fn new(device: DeviceSpec, mem_capacity: usize) -> Self {
        Gpu {
            device,
            mem: GlobalMemory::new(mem_capacity),
        }
    }

    /// Convenience: 1 GiB arena.
    pub fn with_default_mem(device: DeviceSpec) -> Self {
        Gpu::new(device, 1 << 30)
    }

    /// Allocate device memory.
    pub fn alloc(&mut self, bytes: u64) -> DevPtr {
        self.mem.alloc(bytes)
    }

    /// Allocate and upload.
    pub fn alloc_upload_f32(&mut self, data: &[f32]) -> DevPtr {
        let p = self.mem.alloc(data.len() as u64 * 4);
        self.mem.upload_f32(p, data).expect("fresh allocation");
        p
    }

    fn validate(&self, module: &Module, dims: &LaunchDims) -> Result<(), LaunchError> {
        if module.info.num_regs as u32 > self.device.max_regs_per_thread {
            return Err(LaunchError::TooManyRegisters {
                used: module.info.num_regs,
                limit: self.device.max_regs_per_thread,
            });
        }
        if module.info.smem_bytes > self.device.smem_per_sm {
            return Err(LaunchError::TooMuchSharedMem {
                used: module.info.smem_bytes,
                limit: self.device.smem_per_sm,
            });
        }
        let tpb = dims.threads_per_block();
        if tpb == 0 || tpb > 1024 {
            return Err(LaunchError::BadBlockShape(format!(
                "{} threads per block",
                tpb
            )));
        }
        Ok(())
    }

    /// Run the kernel functionally, sequentially over blocks.
    pub fn launch(
        &mut self,
        module: &Module,
        dims: LaunchDims,
        params: &[u8],
    ) -> Result<(), LaunchError> {
        self.validate(module, &dims)?;
        let cbank = ConstBank::new(dims.block, dims.grid, params);
        for bz in 0..dims.grid[2] {
            for by in 0..dims.grid[1] {
                for bx in 0..dims.grid[0] {
                    run_block(module, &mut self.mem, &cbank, [bx, by, bz], dims.block)
                        .map_err(LaunchError::Exec)?;
                }
            }
        }
        Ok(())
    }

    /// Run the kernel functionally like [`Gpu::launch`], collecting
    /// [`ExecCounters`] from every block's memory traces. Sequential over
    /// blocks (the counters are a whole-grid aggregate; determinism matters
    /// more than wall-clock on this opt-in path).
    pub fn launch_counted(
        &mut self,
        module: &Module,
        dims: LaunchDims,
        params: &[u8],
    ) -> Result<ExecCounters, LaunchError> {
        self.validate(module, &dims)?;
        let cbank = ConstBank::new(dims.block, dims.grid, params);
        let mut counters = ExecCounters::default();
        for bz in 0..dims.grid[2] {
            for by in 0..dims.grid[1] {
                for bx in 0..dims.grid[0] {
                    run_block_traced(
                        module,
                        &mut self.mem,
                        &cbank,
                        [bx, by, bz],
                        dims.block,
                        &mut |t| counters.record(t),
                    )
                    .map_err(LaunchError::Exec)?;
                    counters.blocks += 1;
                }
            }
        }
        Ok(counters)
    }

    /// Run the kernel functionally, blocks distributed over host threads.
    ///
    /// # Safety contract (checked only by convention)
    ///
    /// Like on a real GPU, concurrent blocks share global memory without
    /// synchronization. This launcher requires the kernel's blocks to write
    /// disjoint memory (true of every kernel in this workspace); racy kernels
    /// get arbitrary-interleaving results, matching GPU semantics, though the
    /// host data race is technically UB. Use [`Gpu::launch`] when in doubt.
    pub fn launch_parallel(
        &mut self,
        module: &Module,
        dims: LaunchDims,
        params: &[u8],
    ) -> Result<(), LaunchError> {
        self.validate(module, &dims)?;
        let cbank = ConstBank::new(dims.block, dims.grid, params);
        let total = dims.num_blocks();
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        if total < 4 || threads < 2 {
            return self.launch(module, dims, params);
        }

        let mem_ptr = &SharedMem(&mut self.mem as *mut GlobalMemory);

        let next = std::sync::atomic::AtomicU64::new(0);
        let err: std::sync::Mutex<Option<ExecError>> = std::sync::Mutex::new(None);
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= total || err.lock().unwrap().is_some() {
                            break;
                        }
                        let bx = (i % dims.grid[0] as u64) as u32;
                        let by = ((i / dims.grid[0] as u64) % dims.grid[1] as u64) as u32;
                        let bz = (i / (dims.grid[0] as u64 * dims.grid[1] as u64)) as u32;
                        // SAFETY: see the method-level contract — blocks write
                        // disjoint regions, matching device semantics.
                        let mem = unsafe { mem_ptr.get() };
                        if let Err(e) = run_block(module, mem, &cbank, [bx, by, bz], dims.block) {
                            *err.lock().unwrap() = Some(e);
                            break;
                        }
                    }
                });
            }
        });
        match err.into_inner().unwrap() {
            Some(e) => Err(LaunchError::Exec(e)),
            None => Ok(()),
        }
    }
}

/// A `Send + Sync` raw handle to [`GlobalMemory`], shared by the parallel
/// block launcher above and the sharded-SM device simulator
/// ([`crate::device_sim`]). Both run thread blocks concurrently against one
/// global memory under the disjoint-writes contract documented on
/// [`Gpu::launch_parallel`].
pub(crate) struct SharedMem(pub(crate) *mut GlobalMemory);
unsafe impl Sync for SharedMem {}
unsafe impl Send for SharedMem {}

impl SharedMem {
    /// # Safety
    /// Callers must uphold the disjoint-block-writes contract: concurrent
    /// users may not write overlapping regions or read another's writes.
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn get(&self) -> &mut GlobalMemory {
        unsafe { &mut *self.0 }
    }
}

/// Run one thread block to completion (cooperative warp scheduling with
/// barrier support).
pub fn run_block(
    module: &Module,
    global: &mut GlobalMemory,
    cbank: &ConstBank,
    ctaid: [u32; 3],
    block_dim: [u32; 3],
) -> Result<(), ExecError> {
    run_block_traced(module, global, cbank, ctaid, block_dim, &mut |_| {})
}

/// [`run_block`] with a memory-trace observer: `on_trace` sees every
/// executed instruction's [`MemTrace`] (the [`ExecCounters`] feed).
pub fn run_block_traced(
    module: &Module,
    global: &mut GlobalMemory,
    cbank: &ConstBank,
    ctaid: [u32; 3],
    block_dim: [u32; 3],
    on_trace: &mut dyn FnMut(&MemTrace),
) -> Result<(), ExecError> {
    let tpb = block_dim[0] * block_dim[1] * block_dim[2];
    let num_warps = tpb.div_ceil(WARP_SIZE);
    let mut smem = vec![0u8; module.info.smem_bytes as usize];
    let mut warps: Vec<Warp> = (0..num_warps)
        .map(|w| {
            let base = w * WARP_SIZE;
            let lanes = (tpb - base).min(WARP_SIZE);
            Warp::new(module.info.num_regs.max(1), base, lanes)
        })
        .collect();
    let mut at_barrier = vec![false; num_warps as usize];
    let mut steps: u64 = 0;

    loop {
        let mut all_done = true;
        for w in 0..num_warps as usize {
            if warps[w].exited || at_barrier[w] {
                all_done &= warps[w].exited;
                continue;
            }
            all_done = false;
            // Run this warp until it blocks or exits.
            loop {
                let mut env = ExecEnv {
                    global,
                    smem: &mut smem,
                    cbank,
                    ctaid,
                    block_dim,
                };
                let (event, trace) =
                    step(&mut warps[w], module.insts.as_slice(), &mut env, w as u32)?;
                on_trace(&trace);
                steps += 1;
                if steps > STEP_LIMIT {
                    return Err(ExecError {
                        ctaid,
                        warp: w as u32,
                        pc: warps[w].current_ctx().map_or(0, |c| c.pc),
                        inst: "<step limit>".into(),
                        msg: format!(
                            "block exceeded {STEP_LIMIT} instruction steps (infinite loop?)"
                        ),
                    });
                }
                match event {
                    StepEvent::Executed => {}
                    StepEvent::Barrier => {
                        at_barrier[w] = true;
                        break;
                    }
                    StepEvent::Exited => break,
                }
            }
        }
        if all_done {
            return Ok(());
        }
        // Release the barrier when every non-exited warp has arrived
        // (exited warps do not participate in barriers, as on Volta+).
        let waiting = at_barrier.iter().filter(|&&b| b).count();
        let live = warps.iter().filter(|w| !w.exited).count();
        if live > 0 && waiting == live {
            at_barrier.iter_mut().for_each(|b| *b = false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;
    use crate::memory::ParamBuilder;
    use sass::assemble;

    /// y[i] = a*x[i] + y[i] over one block.
    fn axpy_module() -> Module {
        assemble(
            r#"
.kernel axpy
.params 24
    --:-:-:Y:1  S2R R0, SR_TID.X;
    --:-:-:Y:6  MOV R10, c[0x0][0x160];      // x lo
    --:-:-:Y:6  MOV R11, c[0x0][0x164];      // x hi
    --:-:-:Y:6  MOV R12, c[0x0][0x168];      // y lo
    --:-:-:Y:6  MOV R13, c[0x0][0x16c];      // y hi
    --:-:-:Y:6  MOV R14, c[0x0][0x170];      // a (f32)
    --:-:-:Y:6  IMAD.WIDE.U32 R2, R0, 0x4, R10;
    --:-:-:Y:6  IMAD.WIDE.U32 R4, R0, 0x4, R12;
    --:-:0:-:2  LDG.E R6, [R2];
    --:-:1:-:2  LDG.E R7, [R4];
    03:-:-:Y:4  FFMA R8, R6, R14, R7;
    --:-:-:Y:2  STG.E [R4], R8;
    --:-:-:Y:5  EXIT;
"#,
        )
        .unwrap()
    }

    #[test]
    fn axpy_single_block() {
        let mut gpu = Gpu::new(DeviceSpec::rtx2070(), 1 << 20);
        let n = 64usize;
        let x: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let y: Vec<f32> = (0..n).map(|i| 100.0 + i as f32).collect();
        let xp = gpu.alloc_upload_f32(&x);
        let yp = gpu.alloc_upload_f32(&y);
        let params = ParamBuilder::new()
            .push_ptr(xp)
            .push_ptr(yp)
            .push_f32(3.0)
            .build();
        gpu.launch(&axpy_module(), LaunchDims::linear(1, n as u32), &params)
            .unwrap();
        let out = gpu.mem.download_f32(yp, n).unwrap();
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, 3.0 * i as f32 + 100.0 + i as f32, "i={i}");
        }
    }

    /// Block-level reduction through shared memory with barriers:
    /// out[ctaid] = sum of x[ctaid*64 .. ctaid*64+64).
    fn reduce_module() -> Module {
        assemble(
            r#"
.kernel reduce64
.smem 256
.params 16
    --:-:-:Y:1  S2R R0, SR_TID.X;
    --:-:-:Y:1  S2R R1, SR_CTAID.X;
    --:-:-:Y:6  MOV R10, c[0x0][0x160];
    --:-:-:Y:6  MOV R11, c[0x0][0x164];
    --:-:-:Y:6  MOV R12, c[0x0][0x168];
    --:-:-:Y:6  MOV R13, c[0x0][0x16c];
    // idx = ctaid*64 + tid
    --:-:-:Y:6  IMAD R2, R1, 0x40, R0;
    --:-:-:Y:6  IMAD.WIDE.U32 R2, R2, 0x4, R10;
    --:-:0:-:2  LDG.E R6, [R2];
    // smem[tid*4] = v
    --:-:-:Y:6  SHF.L.U32 R7, R0, 0x2, RZ;
01:1:-:Y:2  STS [R7], R6;
    3f:-:-:Y:1  BAR.SYNC 0x0;
    // tid 0 sums all 64.
    --:-:-:Y:6  ISETP.NE.AND P0, PT, R0, 0, PT;
    --:-:-:Y:5  @P0 BRA `(DONE);
    --:-:-:Y:6  MOV R8, 0x0;
    --:-:-:Y:6  MOV R9, 0x0;
LOOP:
    --:-:0:-:2  LDS R5, [R9];
01:-:-:Y:6  FADD R8, R8, R5;
    --:-:-:Y:6  IADD3 R9, R9, 0x4, RZ;
    --:-:-:Y:6  ISETP.LT.U32.AND P1, PT, R9, 0x100, PT;
    --:-:-:Y:5  @P1 BRA `(LOOP);
    --:-:-:Y:6  IMAD.WIDE.U32 R2, R1, 0x4, R12;
    --:-:-:Y:2  STG.E [R2], R8;
DONE:
    --:-:-:Y:5  EXIT;
"#,
        )
        .unwrap()
    }

    #[test]
    fn block_reduction_with_barrier() {
        let mut gpu = Gpu::new(DeviceSpec::v100(), 1 << 20);
        let blocks = 4u32;
        let n = blocks as usize * 64;
        let x: Vec<f32> = (0..n).map(|i| (i % 7) as f32).collect();
        let xp = gpu.alloc_upload_f32(&x);
        let op = gpu.alloc(blocks as u64 * 4);
        let params = ParamBuilder::new().push_ptr(xp).push_ptr(op).build();
        gpu.launch(&reduce_module(), LaunchDims::linear(blocks, 64), &params)
            .unwrap();
        let out = gpu.mem.download_f32(op, blocks as usize).unwrap();
        for b in 0..blocks as usize {
            let want: f32 = x[b * 64..(b + 1) * 64].iter().sum();
            assert_eq!(out[b], want, "block {b}");
        }
    }

    #[test]
    fn parallel_launch_matches_sequential() {
        let mut gpu1 = Gpu::new(DeviceSpec::v100(), 1 << 22);
        let mut gpu2 = Gpu::new(DeviceSpec::v100(), 1 << 22);
        let blocks = 64u32;
        let n = blocks as usize * 64;
        let x: Vec<f32> = (0..n).map(|i| (i as f32).sin()).collect();
        for (gpu, par) in [(&mut gpu1, false), (&mut gpu2, true)] {
            let xp = gpu.alloc_upload_f32(&x);
            let op = gpu.alloc(blocks as u64 * 4);
            let params = ParamBuilder::new().push_ptr(xp).push_ptr(op).build();
            let m = reduce_module();
            let dims = LaunchDims::linear(blocks, 64);
            if par {
                gpu.launch_parallel(&m, dims, &params).unwrap();
            } else {
                gpu.launch(&m, dims, &params).unwrap();
            }
        }
        // Same allocation order → same addresses.
        let a = gpu1
            .mem
            .download_f32(
                0x1000_0000 + ((n * 4).div_ceil(256) * 256) as u64,
                blocks as usize,
            )
            .unwrap();
        let b = gpu2
            .mem
            .download_f32(
                0x1000_0000 + ((n * 4).div_ceil(256) * 256) as u64,
                blocks as usize,
            )
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn launch_rejects_register_hogs() {
        let mut gpu = Gpu::new(DeviceSpec::rtx2070(), 1 << 16);
        let m = assemble("MOV R254, 0x1;\nEXIT;").unwrap();
        let err = gpu.launch(&m, LaunchDims::linear(1, 32), &[]).unwrap_err();
        assert!(
            matches!(err, LaunchError::TooManyRegisters { used: 255, .. }),
            "{err}"
        );
    }

    #[test]
    fn launch_rejects_oversized_smem() {
        let mut gpu = Gpu::new(DeviceSpec::rtx2070(), 1 << 16);
        let m = assemble(".smem 0x18000\nEXIT;").unwrap(); // 96 KiB > Turing 64 KiB
        assert!(matches!(
            gpu.launch(&m, LaunchDims::linear(1, 32), &[]),
            Err(LaunchError::TooMuchSharedMem { .. })
        ));
        // But fine on V100.
        let mut gpu = Gpu::new(DeviceSpec::v100(), 1 << 16);
        gpu.launch(&m, LaunchDims::linear(1, 32), &[]).unwrap();
    }

    #[test]
    fn exited_warps_do_not_gate_barriers() {
        // Warp 0 exits before the barrier; warp 1 must still pass it
        // (on Volta+, exited threads do not participate in BAR.SYNC).
        let m = assemble(
            r#"
.kernel early_exit
.params 8
    --:-:-:Y:1  S2R R0, SR_TID.X;
    --:-:-:Y:6  ISETP.LT.U32.AND P0, PT, R0, 0x20, PT;
    --:-:-:Y:5  @P0 EXIT;
    --:-:-:Y:1  BAR.SYNC 0x0;
    --:-:-:Y:6  MOV R2, c[0x0][0x160];
    --:-:-:Y:6  MOV R3, c[0x0][0x164];
    --:-:-:Y:6  MOV R4, 0x2a;
    --:-:-:Y:2  STG.E [R2], R4;
    --:-:-:Y:5  EXIT;
"#,
        )
        .unwrap();
        let mut gpu = Gpu::new(DeviceSpec::v100(), 1 << 16);
        let out = gpu.alloc(4);
        let params = ParamBuilder::new().push_ptr(out).build();
        gpu.launch(&m, LaunchDims::linear(1, 64), &params).unwrap();
        assert_eq!(gpu.mem.read_u32(out).unwrap(), 0x2a);
    }
}
