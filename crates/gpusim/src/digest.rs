//! Stable content digests of simulation inputs, for the experiment harness's
//! persistent result cache (`bench::simcache`).
//!
//! A timing run is a pure function of `{device spec, assembled program
//! bytes, launch configuration, parameter bytes, TimingOptions}`: the cycle
//! model has no randomness and no dependence on host state. Hashing exactly
//! those inputs therefore yields a *content address* for the result — if the
//! digest matches, the cached [`crate::KernelTiming`] is the answer the
//! simulator would produce.
//!
//! The hash is a fixed, hand-rolled 128-bit FNV-1a variant (two independent
//! 64-bit streams), NOT `std::hash`: `DefaultHasher` is explicitly not
//! stable across releases, and cache keys must survive toolchain upgrades
//! and round-trip through filenames. Digests are rendered as 32 lowercase
//! hex characters.

use sass::Module;

use crate::device::DeviceSpec;
use crate::launch::LaunchDims;
use crate::timing::TimingOptions;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
/// Second stream: same prime, different offset basis (FNV-1a of "gpusim").
const FNV_OFFSET_B: u64 = 0xa68c_c2c8_7d12_89f1;

/// An incremental 128-bit content hash with a stable definition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Digest {
    a: u64,
    b: u64,
}

impl Default for Digest {
    fn default() -> Self {
        Digest::new()
    }
}

impl Digest {
    pub fn new() -> Self {
        Digest {
            a: FNV_OFFSET,
            b: FNV_OFFSET_B,
        }
    }

    /// Absorb raw bytes.
    pub fn bytes(&mut self, data: &[u8]) -> &mut Self {
        for &byte in data {
            self.a = (self.a ^ byte as u64).wrapping_mul(FNV_PRIME);
            self.b = (self.b ^ byte as u64).wrapping_mul(FNV_PRIME.rotate_left(1));
        }
        self
    }

    /// Absorb a length-prefixed string (prefixing prevents concatenation
    /// collisions between adjacent fields).
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.u64(s.len() as u64).bytes(s.as_bytes())
    }

    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.bytes(&[v as u8])
    }

    /// Absorb an `f64` by bit pattern (exact, including -0.0 vs 0.0).
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.bytes(&v.to_bits().to_le_bytes())
    }

    /// Render as 32 lowercase hex characters.
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.a, self.b)
    }
}

impl DeviceSpec {
    /// Absorb every field that influences simulation into `d`.
    pub fn digest_into(&self, d: &mut Digest) {
        d.str(self.name)
            .str(match self.arch {
                crate::device::Arch::Volta => "volta",
                crate::device::Arch::Turing => "turing",
            })
            .u32(self.num_sms)
            .f64(self.clock_hz)
            .u32(self.fp32_lanes_per_sm)
            .u32(self.schedulers_per_sm)
            .u32(self.regs_per_sm)
            .u32(self.max_regs_per_thread)
            .u32(self.smem_per_sm)
            .u32(self.max_threads_per_sm)
            .u32(self.max_blocks_per_sm)
            .f64(self.dram_bw)
            .f64(self.l2_bw)
            .u64(self.l2_bytes)
            .u32(self.l2_hit_latency)
            .u32(self.l2_miss_latency)
            .u32(self.smem_latency)
            .u32(self.l1_smem_combined)
            .u32(self.l1_latency);
    }
}

impl LaunchDims {
    /// Absorb the grid/block shape into `d`.
    pub fn digest_into(&self, d: &mut Digest) {
        for v in self.grid.iter().chain(self.block.iter()) {
            d.u32(*v);
        }
    }
}

impl TimingOptions {
    /// Absorb every option that influences the timing result into `d`.
    ///
    /// `profile` and `counters` are deliberately excluded: observability
    /// flags never change the timing numbers — with either flag off the
    /// cycle loop takes the exact same path and every `KernelTiming` field
    /// is bit-identical (asserted by `gpusim/tests/profile_invariants.rs`
    /// and `gpusim/tests/counter_invariants.rs`); the flags only attach the
    /// per-line profile / counter set to the result. Keeping them out of the
    /// digest means an instrumented run and a plain run share one cache
    /// entry, so turning observability on never invalidates a warm cache
    /// (the cached value stores neither artifact — `bench::simcache`
    /// restores both as `None`).
    pub fn digest_into(&self, d: &mut Digest) {
        match self.blocks_per_sm {
            Some(b) => d.bool(true).u32(b),
            None => d.bool(false),
        };
        match self.region {
            Some((a, b)) => d.bool(true).u32(a).u32(b),
            None => d.bool(false),
        };
        d.bool(self.strict_writeback);
    }
}

/// Absorb an assembled module: the exact program bytes (via
/// [`Module::to_cubin`], which encodes every instruction and control code)
/// — the same bytes the hardware would execute.
pub fn module_digest(module: &Module, d: &mut Digest) {
    d.bytes(&module.to_cubin());
}

/// Version of the timing-model *semantics* mixed into every timing digest.
/// Bump it whenever a model change legitimately moves numbers, so results
/// cached under the old semantics can never be returned for the new ones.
///
/// * v1 — one-wave simulation + wave arithmetic (PRs 1–5).
/// * v2 — full-device multi-wave simulation ([`crate::device_sim`]); the
///   retained one-wave path also changed (residency capped at
///   `ceil(total/num_sms)`, empty grids cost nothing, `busy_sms` reported).
pub const TIMING_MODEL_VERSION: u32 = 2;

/// The content address of one [`crate::timing::time_kernel`] call:
/// `{model version, device, program, launch dims, params, options}` → 32 hex
/// chars.
pub fn timing_digest(
    device: &DeviceSpec,
    module: &Module,
    dims: LaunchDims,
    params: &[u8],
    opts: TimingOptions,
) -> String {
    let mut d = Digest::new();
    d.u32(TIMING_MODEL_VERSION);
    device.digest_into(&mut d);
    module_digest(module, &mut d);
    dims.digest_into(&mut d);
    d.u64(params.len() as u64).bytes(params);
    opts.digest_into(&mut d);
    d.hex()
}

// The sweep engine (`bench::sweep`) runs independent timing simulations on
// host threads; everything a grid point owns must cross thread boundaries.
// Compile-time proof that the simulation state is `Send` — if a field ever
// picks up an `Rc`/raw pointer, this stops compiling.
#[allow(dead_code)]
fn assert_sim_state_send() {
    fn is_send<T: Send>() {}
    is_send::<crate::launch::Gpu>();
    is_send::<crate::memory::GlobalMemory>();
    is_send::<crate::memory::ConstBank>();
    is_send::<DeviceSpec>();
    is_send::<LaunchDims>();
    is_send::<TimingOptions>();
    is_send::<crate::timing::KernelTiming>();
    is_send::<crate::simprof::KernelProfile>();
    is_send::<crate::counters::HwCounters>();
    is_send::<sass::Module>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use sass::assemble;

    fn module() -> Module {
        assemble("MOV R0, 0x1;\nEXIT;").unwrap()
    }

    #[test]
    fn digest_is_stable_and_deterministic() {
        let m = module();
        let a = timing_digest(
            &DeviceSpec::v100(),
            &m,
            LaunchDims::linear(4, 32),
            &[1, 2, 3],
            TimingOptions::default(),
        );
        let b = timing_digest(
            &DeviceSpec::v100(),
            &m,
            LaunchDims::linear(4, 32),
            &[1, 2, 3],
            TimingOptions::default(),
        );
        assert_eq!(a, b);
        assert_eq!(a.len(), 32);
        assert!(a.bytes().all(|c| c.is_ascii_hexdigit()));
        // The empty digest is a fixed constant — a change here means every
        // existing cache entry silently invalidates. Bump knowingly.
        assert_eq!(Digest::new().hex(), "cbf29ce484222325a68cc2c87d1289f1");
    }

    #[test]
    fn digest_separates_all_inputs() {
        let m = module();
        let base = || {
            timing_digest(
                &DeviceSpec::v100(),
                &m,
                LaunchDims::linear(4, 32),
                &[],
                TimingOptions::default(),
            )
        };
        // Different device.
        assert_ne!(
            base(),
            timing_digest(
                &DeviceSpec::rtx2070(),
                &m,
                LaunchDims::linear(4, 32),
                &[],
                TimingOptions::default(),
            )
        );
        // Different program (one immediate changed).
        let m2 = assemble("MOV R0, 0x2;\nEXIT;").unwrap();
        assert_ne!(
            base(),
            timing_digest(
                &DeviceSpec::v100(),
                &m2,
                LaunchDims::linear(4, 32),
                &[],
                TimingOptions::default(),
            )
        );
        // Different launch config.
        assert_ne!(
            base(),
            timing_digest(
                &DeviceSpec::v100(),
                &m,
                LaunchDims::linear(8, 32),
                &[],
                TimingOptions::default(),
            )
        );
        // Different params.
        assert_ne!(
            base(),
            timing_digest(
                &DeviceSpec::v100(),
                &m,
                LaunchDims::linear(4, 32),
                &[0],
                TimingOptions::default(),
            )
        );
        // Different options.
        assert_ne!(
            base(),
            timing_digest(
                &DeviceSpec::v100(),
                &m,
                LaunchDims::linear(4, 32),
                &[],
                TimingOptions {
                    blocks_per_sm: Some(1),
                    ..Default::default()
                },
            )
        );
        // Observability flags do NOT change the key (bit-identical timing):
        // profiled, counted, or both, the cache entry is shared.
        for (profile, counters) in [(true, false), (false, true), (true, true)] {
            assert_eq!(
                base(),
                timing_digest(
                    &DeviceSpec::v100(),
                    &m,
                    LaunchDims::linear(4, 32),
                    &[],
                    TimingOptions {
                        profile,
                        counters,
                        ..Default::default()
                    },
                ),
                "digest must ignore profile={profile} counters={counters}"
            );
        }
    }

    #[test]
    fn field_boundaries_do_not_collide() {
        // "ab" + "c" must differ from "a" + "bc" (length prefixes).
        let mut d1 = Digest::new();
        d1.str("ab").str("c");
        let mut d2 = Digest::new();
        d2.str("a").str("bc");
        assert_ne!(d1.hex(), d2.hex());
    }
}
