//! `timeq` — a deterministic time-ordered event queue.
//!
//! Both levels of the simulator schedule work against future cycle counts:
//!
//! * inside one SM, the wave loop ([`crate::timing`]) parks scoreboard
//!   completions and deferred load writebacks at their delivery cycle;
//! * at device level ([`crate::device_sim`]), whole SMs advance in order of
//!   their next wave boundary — an SM with no pending work is simply never
//!   enqueued, so idle SMs cost nothing.
//!
//! Before the full-device rebuild the wave loop used a raw
//! `BinaryHeap<Reverse<Event>>`; `std`'s heap is only *weakly* ordered for
//! equal keys (pop order among ties is unspecified across
//! implementations), which is fine for one closed loop but not for a
//! structure shared by two simulation levels that must produce bit-stable
//! results under resharding. `TimeQueue` therefore pins the full order:
//! entries pop by `(time, key)` with FIFO order among exact ties (a
//! monotonic sequence number), so any two runs that push the same entries
//! pop them identically.

/// A min-queue of `(time, key) -> value` with deterministic pop order:
/// ascending `time`, then ascending `key`, then insertion order.
#[derive(Debug)]
pub struct TimeQueue<K: Ord + Copy, V> {
    heap: Vec<Entry<K, V>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<K, V> {
    time: u64,
    key: K,
    seq: u64,
    value: V,
}

impl<K: Ord + Copy, V> Entry<K, V> {
    fn rank(&self) -> (u64, &K, u64) {
        (self.time, &self.key, self.seq)
    }
}

impl<K: Ord + Copy, V> Default for TimeQueue<K, V> {
    fn default() -> Self {
        TimeQueue::new()
    }
}

impl<K: Ord + Copy, V> TimeQueue<K, V> {
    pub fn new() -> Self {
        TimeQueue {
            heap: Vec::new(),
            seq: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Earliest scheduled time, if any entry is queued.
    pub fn peek_time(&self) -> Option<u64> {
        self.heap.first().map(|e| e.time)
    }

    /// Schedule `value` under `key` at `time`.
    pub fn push(&mut self, time: u64, key: K, value: V) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry {
            time,
            key,
            seq,
            value,
        });
        self.sift_up(self.heap.len() - 1);
    }

    /// Remove and return the earliest entry.
    pub fn pop(&mut self) -> Option<(u64, K, V)> {
        if self.heap.is_empty() {
            return None;
        }
        let last = self.heap.len() - 1;
        self.heap.swap(0, last);
        let e = self.heap.pop().unwrap();
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
        Some((e.time, e.key, e.value))
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[i].rank() < self.heap[parent].rank() {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut best = i;
            if l < self.heap.len() && self.heap[l].rank() < self.heap[best].rank() {
                best = l;
            }
            if r < self.heap.len() && self.heap[r].rank() < self.heap[best].rank() {
                best = r;
            }
            if best == i {
                break;
            }
            self.heap.swap(i, best);
            i = best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_key_order() {
        let mut q: TimeQueue<(usize, u8), &str> = TimeQueue::new();
        q.push(9, (0, 0), "late");
        q.push(3, (2, 1), "t3-w2");
        q.push(3, (1, 0), "t3-w1");
        q.push(1, (5, 0), "first");
        assert_eq!(q.peek_time(), Some(1));
        assert_eq!(q.pop().unwrap().2, "first");
        assert_eq!(q.pop().unwrap().2, "t3-w1");
        assert_eq!(q.pop().unwrap().2, "t3-w2");
        assert_eq!(q.pop().unwrap().2, "late");
        assert!(q.pop().is_none());
    }

    #[test]
    fn exact_ties_pop_fifo() {
        let mut q: TimeQueue<u32, u32> = TimeQueue::new();
        for v in 0..16 {
            q.push(7, 1, v);
        }
        for v in 0..16 {
            assert_eq!(q.pop(), Some((7, 1, v)));
        }
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q: TimeQueue<u32, u64> = TimeQueue::new();
        // Deterministic pseudo-random schedule, no RNG dependency.
        let mut x: u64 = 0x2545_f491_4f6c_dd1d;
        let mut popped = Vec::new();
        for i in 0..200u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            q.push(x % 50, (x % 7) as u32, i);
            if i % 3 == 0 {
                if let Some((t, _, _)) = q.pop() {
                    popped.push(t);
                }
            }
        }
        let mut last = 0;
        while let Some((t, _, _)) = q.pop() {
            // Within the drain phase, times must be non-decreasing.
            assert!(t >= last);
            last = t;
        }
        assert_eq!(popped.len(), 67);
    }
}
