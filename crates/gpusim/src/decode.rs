//! Decoded-instruction descriptor table for the timing hot loop.
//!
//! [`crate::timing::time_kernel`] simulates every cycle of a wave; anything
//! the per-cycle path computes by pattern-matching [`Op`] is paid millions
//! of times per launch. This module folds all of it into one flat
//! [`InstDesc`] per PC, built once per launch:
//!
//! * pipe classification and FLOP count (the old `pipe_of` / `flops_of`);
//! * control-code fields the scheduler consults every cycle (`wait_mask`,
//!   stall count, yield/reuse flags, read/write barriers);
//! * the source-operand list of `Op::src_regs()` as a fixed array (reuse
//!   accounting, strict-writeback poison checks, reuse-cache latching);
//! * register-bank parity **bitmasks** for the conflict test — the old
//!   `reg_bank_conflict` built two `Vec`s per FP32 issue; the descriptor
//!   knows statically whether a conflict is even possible (fewer than three
//!   distinct same-parity sources can never conflict, since the reuse cache
//!   only ever removes bank reads) and otherwise resolves it by clearing
//!   mask bits for reuse-covered registers.
//!
//! Everything here is observationally identical to the direct computation on
//! [`Instruction`]; `gpusim/tests/hotloop_identity.rs` pins the end-to-end
//! contract and the unit tests below pin the per-field equivalences.

use sass::isa::{Instruction, MemSpace, Op};
use sass::reg::Reg;

/// Classification for pipe assignment.
#[derive(PartialEq, Eq, Clone, Copy, Debug)]
pub(crate) enum PipeKind {
    Fp32,
    Int,
    Mio,
    Ctrl,
    None,
}

/// Memory-space classification of an MIO instruction.
#[derive(PartialEq, Eq, Clone, Copy, Debug)]
pub(crate) enum MemKind {
    NotMem,
    Shared,
    Global,
}

/// Upper bound on `Op::src_regs()` occurrences (STG.E.128 to global memory:
/// a 64-bit base pair in slot 0 plus four data registers in slot 2).
pub(crate) const MAX_SRCS: usize = 6;

/// Flat per-PC descriptor: everything the timing loop needs about an
/// instruction without touching [`Op`] again.
#[derive(Clone)]
pub(crate) struct InstDesc {
    pub pipe: PipeKind,
    pub mem: MemKind,
    /// FP32 FLOPs of the whole warp (per-lane FLOPs × 32).
    pub flops_x32: u64,
    /// Issue-to-next-issue stall from the control code, floored at 1.
    pub stall_cycles: u64,
    pub yield_flag: bool,
    pub reuse: u8,
    pub wait_mask: u8,
    pub write_bar: Option<u8>,
    pub read_bar: Option<u8>,
    /// PC inside the accounting region of this launch.
    pub in_region: bool,
    /// `(first dst reg, reg count)` of a load that participates in strict
    /// writeback (an `Op::Ld` with a real destination and a write barrier).
    pub strict_ld: Option<(u8, u8)>,
    /// `Op::src_regs()` occurrences, in order (RZ already excluded).
    srcs: [(u8, Reg); MAX_SRCS],
    nsrcs: u8,
    /// First source occurrence per operand slot — what `.reuse` latches.
    pub reuse_latch: [Option<Reg>; 4],
    /// Distinct source registers by index parity, one bit per register pair
    /// (`reg.0 >> 1`). Two 64-bit banks ⇒ three distinct same-parity reads
    /// stall the FP32 pipe one extra cycle.
    even_mask: u128,
    odd_mask: u128,
    /// Distinct source registers with the slot-mask of where they appear.
    uniq: [(Reg, u8); MAX_SRCS],
    nuniq: u8,
    /// Static screen: with fewer than three distinct sources in either bank
    /// the access can never conflict, whatever the reuse cache holds.
    maybe_conflict: bool,
}

fn pipe_of(op: &Op) -> PipeKind {
    match op {
        Op::Ffma { .. }
        | Op::Fadd { .. }
        | Op::Fmul { .. }
        | Op::Fsetp { .. }
        | Op::Hfma2 { .. }
        | Op::Hadd2 { .. }
        | Op::Hmul2 { .. } => PipeKind::Fp32,
        Op::Iadd3 { .. }
        | Op::Imad { .. }
        | Op::ImadHi { .. }
        | Op::ImadWide { .. }
        | Op::Lea { .. }
        | Op::Lop3 { .. }
        | Op::Shf { .. }
        | Op::Mov { .. }
        | Op::Sel { .. }
        | Op::Isetp { .. }
        | Op::P2r { .. }
        | Op::R2p { .. }
        | Op::S2r { .. } => PipeKind::Int,
        Op::Ld { .. } | Op::St { .. } => PipeKind::Mio,
        Op::Bra { .. } | Op::Exit | Op::BarSync => PipeKind::Ctrl,
        Op::Nop => PipeKind::None,
    }
}

/// FP32 FLOPs per lane for an op.
fn flops_of(op: &Op) -> u64 {
    match op {
        Op::Ffma { .. } => 2,
        Op::Fadd { .. } | Op::Fmul { .. } => 1,
        // Paired fp16 ops do two element-operations per lane (§8.3's 2×).
        Op::Hfma2 { .. } => 4,
        Op::Hadd2 { .. } | Op::Hmul2 { .. } => 2,
        _ => 0,
    }
}

impl InstDesc {
    pub fn decode(inst: &Instruction, pc: u32, region: Option<(u32, u32)>) -> Self {
        let op = &inst.op;
        let occurrences = op.src_regs();
        assert!(
            occurrences.len() <= MAX_SRCS,
            "instruction has {} source occurrences (descriptor cap {MAX_SRCS})",
            occurrences.len()
        );
        let mut srcs = [(0u8, Reg(0)); MAX_SRCS];
        let mut reuse_latch = [None; 4];
        let mut uniq: [(Reg, u8); MAX_SRCS] = [(Reg(0), 0); MAX_SRCS];
        let mut nuniq = 0usize;
        let (mut even_mask, mut odd_mask) = (0u128, 0u128);
        for (i, &(slot, r)) in occurrences.iter().enumerate() {
            srcs[i] = (slot, r);
            let latch = &mut reuse_latch[slot as usize];
            if latch.is_none() {
                *latch = Some(r);
            }
            match uniq[..nuniq].iter_mut().find(|(u, _)| *u == r) {
                Some((_, slots)) => *slots |= 1 << slot,
                None => {
                    uniq[nuniq] = (r, 1 << slot);
                    nuniq += 1;
                    let bit = 1u128 << (r.0 >> 1);
                    if r.0 & 1 == 0 {
                        even_mask |= bit;
                    } else {
                        odd_mask |= bit;
                    }
                }
            }
        }
        let strict_ld = match *op {
            Op::Ld { d, width, .. } if !d.is_rz() && inst.ctrl.write_bar.is_some() => {
                Some((d.0, width.regs()))
            }
            _ => None,
        };
        let mem = match op {
            Op::Ld { space, .. } | Op::St { space, .. } => match space {
                MemSpace::Shared => MemKind::Shared,
                MemSpace::Global => MemKind::Global,
            },
            _ => MemKind::NotMem,
        };
        InstDesc {
            pipe: pipe_of(op),
            mem,
            flops_x32: flops_of(op) * 32,
            stall_cycles: inst.ctrl.stall.max(1) as u64,
            yield_flag: inst.ctrl.yield_flag,
            reuse: inst.ctrl.reuse,
            wait_mask: inst.ctrl.wait_mask,
            write_bar: inst.ctrl.write_bar,
            read_bar: inst.ctrl.read_bar,
            in_region: region.is_none_or(|(a, b)| pc >= a && pc < b),
            strict_ld,
            srcs,
            nsrcs: occurrences.len() as u8,
            reuse_latch,
            even_mask,
            odd_mask,
            uniq,
            nuniq: nuniq as u8,
            maybe_conflict: even_mask.count_ones() >= 3 || odd_mask.count_ones() >= 3,
        }
    }

    /// Source occurrences in `Op::src_regs()` order (RZ never appears).
    #[inline]
    pub fn srcs(&self) -> &[(u8, Reg)] {
        &self.srcs[..self.nsrcs as usize]
    }

    /// Refresh the control-code-derived fields from `inst` without redoing
    /// the operand analysis. This is the batch-evaluation fast path
    /// ([`crate::batch::BatchTimer`]): a schedule-tuner candidate differs
    /// from its baseline only in control codes and instruction order, so the
    /// expensive op-derived fields (pipe, FLOPs, source lists, bank masks)
    /// can be cloned from the baseline descriptor of the *same* instruction
    /// and only this part recomputed. `inst.op` must match the op this
    /// descriptor was decoded from.
    pub fn repatch_ctrl(&mut self, inst: &Instruction, pc: u32, region: Option<(u32, u32)>) {
        self.stall_cycles = inst.ctrl.stall.max(1) as u64;
        self.yield_flag = inst.ctrl.yield_flag;
        self.reuse = inst.ctrl.reuse;
        self.wait_mask = inst.ctrl.wait_mask;
        self.write_bar = inst.ctrl.write_bar;
        self.read_bar = inst.ctrl.read_bar;
        self.in_region = region.is_none_or(|(a, b)| pc >= a && pc < b);
        self.strict_ld = match inst.op {
            Op::Ld { d, width, .. } if !d.is_rz() && inst.ctrl.write_bar.is_some() => {
                Some((d.0, width.regs()))
            }
            _ => None,
        };
    }

    /// Extra FP32-pipe cycle from a register-bank conflict, given the warp's
    /// current reuse-cache state.
    ///
    /// Volta/Turing have two 64-bit banks (even/odd register index). Per the
    /// paper's footnote 6, an FFMA whose three source registers all fall in
    /// one bank occupies the pipe one extra cycle; operands served from the
    /// reuse cache don't touch the bank. A register reads its bank iff *some*
    /// slot naming it is not covered by the cache.
    #[inline]
    pub fn bank_conflict(&self, reuse_cache: &[Option<Reg>; 4]) -> bool {
        if !self.maybe_conflict {
            return false;
        }
        let (mut even, mut odd) = (self.even_mask, self.odd_mask);
        for &(r, slots) in &self.uniq[..self.nuniq as usize] {
            let mut banked = false;
            for sl in 0..4u8 {
                if slots & (1 << sl) != 0 && reuse_cache[sl as usize] != Some(r) {
                    banked = true;
                    break;
                }
            }
            if !banked {
                let bit = 1u128 << (r.0 >> 1);
                if r.0 & 1 == 0 {
                    even &= !bit;
                } else {
                    odd &= !bit;
                }
            }
        }
        even.count_ones() >= 3 || odd.count_ones() >= 3
    }
}

/// Build the descriptor table for a launch: one entry per PC.
pub(crate) fn decode_module(insts: &[Instruction], region: Option<(u32, u32)>) -> Vec<InstDesc> {
    insts
        .iter()
        .enumerate()
        .map(|(pc, inst)| InstDesc::decode(inst, pc as u32, region))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sass::assemble;

    /// The pre-descriptor implementation of the conflict test, kept as the
    /// reference the bitmask version must match for every reuse state.
    fn reference_conflict(inst: &Instruction, reuse_cache: &[Option<Reg>; 4]) -> bool {
        let mut even = Vec::new();
        let mut odd = Vec::new();
        for (slot, r) in inst.op.src_regs() {
            if r.is_rz() {
                continue;
            }
            if reuse_cache[slot as usize] == Some(r) {
                continue;
            }
            let v = if r.0 & 1 == 0 { &mut even } else { &mut odd };
            if !v.contains(&r) {
                v.push(r);
            }
        }
        even.len() >= 3 || odd.len() >= 3
    }

    fn sample_module() -> sass::Module {
        assemble(
            r#"
.kernel mix
.params 16
    --:-:-:Y:1  S2R R0, SR_TID.X;
    --:-:-:Y:6  MOV R10, c[0x0][0x160];
    --:-:-:Y:6  MOV R11, c[0x0][0x164];
    --:-:-:Y:1  FFMA R4, R2, R4, R6;
    --:-:-:Y:1  FFMA R5, R2, R4.reuse, R7;
    --:-:-:Y:1  FFMA R6, R3, R5, R9;
    --:-:-:Y:1  FADD R8, R2, R4;
    --:-:-:Y:6  IMAD.WIDE.U32 R2, R0, 0x10, R10;
    --:-:0:-:2  LDG.E.128 R4, [R2];
    --:-:-:Y:2  STG.E.128 [R2], R4;
    01:-:-:Y:4  IADD3 R12, R4, R5, R6;
    --:-:-:Y:5  EXIT;
"#,
        )
        .unwrap()
    }

    #[test]
    fn descriptor_matches_direct_computation() {
        let m = sample_module();
        let table = decode_module(&m.insts, Some((3, 7)));
        for (pc, (inst, d)) in m.insts.iter().zip(&table).enumerate() {
            assert_eq!(d.flops_x32, flops_of(&inst.op) * 32, "pc {pc}");
            assert_eq!(d.stall_cycles, inst.ctrl.stall.max(1) as u64, "pc {pc}");
            assert_eq!(d.yield_flag, inst.ctrl.yield_flag, "pc {pc}");
            assert_eq!(d.wait_mask, inst.ctrl.wait_mask, "pc {pc}");
            assert_eq!(d.write_bar, inst.ctrl.write_bar, "pc {pc}");
            assert_eq!(d.read_bar, inst.ctrl.read_bar, "pc {pc}");
            assert_eq!(d.in_region, (3..7).contains(&(pc as u32)), "pc {pc}");
            assert_eq!(d.srcs(), inst.op.src_regs().as_slice(), "pc {pc}");
            for sl in 0..4u8 {
                let first = inst
                    .op
                    .src_regs()
                    .into_iter()
                    .find(|(s, _)| *s == sl)
                    .map(|(_, r)| r);
                assert_eq!(d.reuse_latch[sl as usize], first, "pc {pc} slot {sl}");
            }
        }
        // Pipe/mem classification spot checks.
        assert_eq!(table[0].pipe, PipeKind::Int); // S2R
        assert_eq!(table[3].pipe, PipeKind::Fp32); // FFMA
        assert_eq!(table[8].pipe, PipeKind::Mio); // LDG
        assert_eq!(table[8].mem, MemKind::Global);
        assert_eq!(table[11].pipe, PipeKind::Ctrl); // EXIT
                                                    // Strict-writeback eligibility: the LDG carries a write barrier and
                                                    // a real destination; the STG must not qualify.
        assert_eq!(table[8].strict_ld, Some((4, 4)));
        assert_eq!(table[9].strict_ld, None);
    }

    #[test]
    fn bank_conflict_matches_reference_for_all_reuse_states() {
        let m = sample_module();
        let table = decode_module(&m.insts, None);
        // Enumerate reuse-cache states over the registers each instruction
        // actually names (plus None and an unrelated register).
        for (pc, (inst, d)) in m.insts.iter().zip(&table).enumerate() {
            let mut regs: Vec<Option<Reg>> = vec![None, Some(Reg(99))];
            regs.extend(inst.op.src_regs().iter().map(|&(_, r)| Some(r)));
            for &a in &regs {
                for &b in &regs {
                    for &c in &regs {
                        let cache = [a, b, c, None];
                        assert_eq!(
                            d.bank_conflict(&cache),
                            reference_conflict(inst, &cache),
                            "pc {pc} cache {cache:?}"
                        );
                    }
                }
            }
        }
    }

    /// Three distinct even sources conflict; the static screen filters a
    /// two-source op before any per-issue work.
    #[test]
    fn static_screen_and_masks() {
        let m = assemble(
            ".kernel t\n--:-:-:Y:1 FFMA R8, R2, R4, R6;\n--:-:-:Y:1 FADD R8, R2, R4;\nEXIT;\n",
        )
        .unwrap();
        let t = decode_module(&m.insts, None);
        assert!(t[0].maybe_conflict);
        assert!(t[0].bank_conflict(&[None; 4]));
        // Covering one even source by reuse removes the conflict.
        assert!(!t[0].bank_conflict(&[Some(Reg(2)), None, None, None]));
        assert!(!t[1].maybe_conflict);
        assert!(!t[1].bank_conflict(&[None; 4]));
    }
}
