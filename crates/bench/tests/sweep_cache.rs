//! Cache-correctness regression tests for the sweep engine: real simulator
//! timings driven through `bench::sweep` + `bench::simcache`, pinning the
//! properties the experiment binaries rely on —
//!
//! * determinism (selfcheck: every point evaluated twice yields identical
//!   JSON);
//! * a warm rerun hits every point and reproduces the cold run bit-for-bit;
//! * changing one kernel's program invalidates exactly that point;
//! * `KernelTiming` survives the JSON round trip (store → load → equal).

use bench::json::obj;
use bench::simcache::{timing_from_json, timing_to_json, CacheKey, Store};
use bench::sweep::{Sweep, SweepOptions};
use gpusim::{DeviceSpec, Gpu, LaunchDims, TimingOptions};
use sass::assemble;

const K1: &str = "MOV R0, 0x1;\nEXIT;";
const K2: &str = "MOV R0, 0x2;\nEXIT;";
const K3: &str = "MOV R0, 0x3;\nEXIT;";

fn tmpdir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("sweep-cache-{}-{}", tag, std::process::id()))
}

fn opts(dir: &std::path::Path, selfcheck: bool) -> SweepOptions {
    SweepOptions {
        jobs: 2,
        cache: true,
        cache_dir: dir.into(),
        selfcheck,
        quiet: true,
    }
}

/// Register a real cycle-simulator timing of `src`, content-addressed the
/// same way the experiment binaries do it.
fn sim_point(sw: &mut Sweep, src: &'static str) {
    let dev = DeviceSpec::rtx2070();
    let module = assemble(src).unwrap();
    let dims = LaunchDims::linear(2, 32);
    let key = CacheKey::new(gpusim::timing_digest(
        &dev,
        &module,
        dims,
        &[],
        TimingOptions::default(),
    ));
    sw.point(key, move || {
        let mut gpu = Gpu::new(dev.clone(), 1 << 20);
        let t = gpusim::timing::time_kernel(&mut gpu, &module, dims, &[], TimingOptions::default())
            .expect("test kernel times");
        timing_to_json(&t)
    });
}

#[test]
fn warm_rerun_hits_everything_and_matches_cold_bit_for_bit() {
    let dir = tmpdir("warm");
    std::fs::remove_dir_all(&dir).ok();
    let run = |selfcheck| {
        let mut sw = Sweep::new("it-warm", opts(&dir, selfcheck));
        for src in [K1, K2, K3] {
            sim_point(&mut sw, src);
        }
        sw.run()
    };
    // Cold, with the determinism audit on: every miss is evaluated twice
    // and must produce identical JSON.
    let cold = run(true);
    assert_eq!((cold.hits, cold.misses), (0, 3));
    let warm = run(false);
    assert_eq!((warm.hits, warm.misses), (3, 0));
    for (c, w) in cold.results.iter().zip(&warm.results) {
        assert_eq!(c.render(), w.render());
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn changing_one_kernel_invalidates_only_that_point() {
    let dir = tmpdir("invalidate");
    std::fs::remove_dir_all(&dir).ok();
    let run = |srcs: [&'static str; 3]| {
        let mut sw = Sweep::new("it-inv", opts(&dir, false));
        for src in srcs {
            sim_point(&mut sw, src);
        }
        sw.run()
    };
    let first = run([K1, K2, K3]);
    assert_eq!((first.hits, first.misses), (0, 3));
    // One program changed: exactly that point re-simulates.
    let second = run([K1, "MOV R0, 0x7;\nEXIT;", K3]);
    assert_eq!((second.hits, second.misses), (2, 1));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn kernel_timing_survives_json_round_trip() {
    let dev = DeviceSpec::v100();
    let module = assemble(K1).unwrap();
    let mut gpu = Gpu::new(dev, 1 << 20);
    let t = gpusim::timing::time_kernel(
        &mut gpu,
        &module,
        LaunchDims::linear(2, 32),
        &[],
        TimingOptions::default(),
    )
    .expect("test kernel times");
    let j = timing_to_json(&t);
    let back = timing_from_json(&j).expect("timing record parses back");
    assert_eq!(j.render(), timing_to_json(&back).render());
    assert_eq!(t.time_s, back.time_s);
    assert_eq!(t.wave_cycles, back.wave_cycles);
    assert_eq!(t.idle_breakdown, back.idle_breakdown);
    assert!(back.profile.is_none());
}

#[test]
fn store_load_round_trips_awkward_floats_exactly() {
    // store → load goes through render + parse; the JSON layer guarantees
    // exact f64 round trips, so a cache hit is bit-identical to a miss.
    let dir = tmpdir("floats");
    std::fs::remove_dir_all(&dir).ok();
    let store = Store::new(&dir);
    let key = CacheKey::new("f00d".into());
    let v = obj(&[
        ("tenth", 0.1f64.into()),
        ("third", (1.0f64 / 3.0).into()),
        ("tiny", 4.9e-324f64.into()),
        ("neg", (-0.0f64).into()),
    ]);
    store.store(&key, &v);
    assert_eq!(store.load(&key), Some(v));
    std::fs::remove_dir_all(&dir).ok();
}
