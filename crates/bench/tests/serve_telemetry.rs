//! Telemetry determinism contract for the serve binary (ISSUE 8):
//!
//! * the `--json` report is **byte-identical with telemetry on and off** —
//!   recording is observation, never perturbation;
//! * the `--events` JSON-lines log and the `--pool-trace` Chrome trace are
//!   themselves **byte-identical across `--jobs 1/2/8`** (events are sorted
//!   by `(timestamp, sequence)`, device outcomes merge in registration
//!   order);
//! * both artifacts parse: every events line is a JSON object carrying the
//!   context fields, and the pool trace is one JSON document with a
//!   `traceEvents` array;
//! * `servemon --log <events> --smoke` replays the log green (the writer
//!   and the reader stay honest against each other).

use std::path::Path;
use std::process::Command;

fn run_serve(jobs: u32, dir: &Path, tag: &str, telemetry: bool) -> (Vec<u8>, Vec<u8>, Vec<u8>) {
    let json = dir.join(format!("serve_{tag}.json"));
    let events = dir.join(format!("events_{tag}.jsonl"));
    let pool = dir.join(format!("pool_{tag}.json"));
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_serve"));
    cmd.args([
        "--smoke",
        "--seed",
        "77",
        "--jobs",
        &jobs.to_string(),
        "--json",
        json.to_str().unwrap(),
        "--plan-dir",
        dir.join("plans").to_str().unwrap(),
    ]);
    if telemetry {
        cmd.args([
            "--events",
            events.to_str().unwrap(),
            "--pool-trace",
            pool.to_str().unwrap(),
        ]);
    }
    let status = cmd.status().expect("serve binary runs");
    assert!(status.success(), "serve --smoke ({tag}) failed");
    (
        std::fs::read(&json).expect("json written"),
        if telemetry {
            std::fs::read(&events).expect("events written")
        } else {
            Vec::new()
        },
        if telemetry {
            std::fs::read(&pool).expect("pool trace written")
        } else {
            Vec::new()
        },
    )
}

#[test]
fn telemetry_is_pure_observation_and_jobs_invariant() {
    let base = std::env::temp_dir().join(format!("serve_tel_{}", std::process::id()));
    std::fs::create_dir_all(&base).unwrap();

    let (json_off, _, _) = run_serve(2, &base, "off", false);
    let (json_on, events, pool) = run_serve(2, &base, "on", true);
    assert!(!json_off.is_empty());
    assert_eq!(
        json_off, json_on,
        "--events/--pool-trace changed the report: telemetry perturbed the run"
    );

    for jobs in [1u32, 8] {
        let tag = format!("j{jobs}");
        let (json_j, events_j, pool_j) = run_serve(jobs, &base, &tag, true);
        assert_eq!(json_off, json_j, "--jobs {jobs}: report diverged");
        assert_eq!(events, events_j, "--jobs {jobs}: events log diverged");
        assert_eq!(pool, pool_j, "--jobs {jobs}: pool trace diverged");
    }

    // Both artifacts parse and carry what they promise.
    let events_text = String::from_utf8(events).unwrap();
    let mut kinds = std::collections::HashSet::new();
    for line in events_text.lines() {
        let v = bench::json::parse(line).expect("events line parses");
        for key in ["device", "phase", "kind"] {
            assert!(v.get(key).is_some(), "events line missing {key}: {line}");
        }
        kinds.insert(v.get("kind").unwrap().as_str().unwrap().to_string());
    }
    for kind in [
        "arrival",
        "enqueue",
        "plan_fetch",
        "dispatch",
        "complete",
        "gauge",
    ] {
        assert!(kinds.contains(kind), "no {kind} events in the log");
    }
    let pool_doc = bench::json::parse(std::str::from_utf8(&pool).unwrap()).unwrap();
    let evs = pool_doc
        .get("traceEvents")
        .and_then(bench::json::Json::as_arr)
        .expect("pool trace holds traceEvents");
    assert!(
        evs.iter()
            .any(|e| e.get("ph").and_then(bench::json::Json::as_str) == Some("X")),
        "pool trace holds complete events"
    );

    // The reader replays the writer's log green.
    let status = Command::new(env!("CARGO_BIN_EXE_servemon"))
        .args([
            "--log",
            base.join("events_on.jsonl").to_str().unwrap(),
            "--smoke",
        ])
        .status()
        .expect("servemon binary runs");
    assert!(status.success(), "servemon --smoke failed on the smoke log");

    std::fs::remove_dir_all(&base).ok();
}
