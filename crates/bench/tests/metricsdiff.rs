//! End-to-end test of the `metricsdiff` gate binary: a report diffed
//! against itself is clean (exit 0), an injected perturbation is caught
//! (exit 1), and bad input is a usage error (exit 2) — the acceptance
//! criterion for the CI perf-regression gate.

use std::process::Command;

fn report(speedup: f64, bound: &str) -> String {
    format!(
        r#"[
  {{"experiment":"table2","device":"V100","config":{{"layer":"Conv2","n":64,"kind":"metrics"}},"metrics":{{"speedup":{speedup},"bound":"{bound}"}}}}
]
"#
    )
}

fn run(args: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_metricsdiff"))
        .args(args)
        .output()
        .expect("run metricsdiff");
    (
        out.status.code().expect("exit code"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

#[test]
fn gate_passes_clean_and_catches_perturbation() {
    let dir = std::env::temp_dir().join(format!("metricsdiff-e2e-{}", std::process::id()));
    std::fs::create_dir_all(dir.join("baselines")).unwrap();
    let base = dir.join("baselines/table2.json");
    let fresh = dir.join("table2.json");
    std::fs::write(&base, report(1.80, "dram")).unwrap();

    // Same numbers: clean gate.
    std::fs::write(&fresh, report(1.80, "dram")).unwrap();
    let (code, _) = run(&[base.to_str().unwrap(), fresh.to_str().unwrap()]);
    assert_eq!(code, 0, "identical reports must pass");

    // 10% perturbation blows the 2% default tolerance — and the --baseline
    // directory form CI uses resolves the same pair by file name.
    std::fs::write(&fresh, report(1.98, "dram")).unwrap();
    let (code, stdout) = run(&[
        "--baseline",
        dir.join("baselines").to_str().unwrap(),
        fresh.to_str().unwrap(),
    ]);
    assert_eq!(code, 1, "perturbed report must fail the gate");
    assert!(
        stdout.contains("speedup"),
        "diff names the metric: {stdout}"
    );

    // A flipped bottleneck classification fails even with a huge tolerance.
    std::fs::write(&fresh, report(1.80, "smem")).unwrap();
    let (code, _) = run(&[
        "--tol",
        "100",
        base.to_str().unwrap(),
        fresh.to_str().unwrap(),
    ]);
    assert_eq!(code, 1, "bound flip must fail the gate");

    // Widened tolerance lets the numeric drift pass.
    std::fs::write(&fresh, report(1.98, "dram")).unwrap();
    let (code, _) = run(&[
        "--tol",
        "0.2",
        base.to_str().unwrap(),
        fresh.to_str().unwrap(),
    ]);
    assert_eq!(code, 0);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_input_is_a_usage_error() {
    let (code, _) = run(&["only-one-file.json"]);
    assert_eq!(code, 2);
    let (code, _) = run(&["/nonexistent/a.json", "/nonexistent/b.json"]);
    assert_eq!(code, 2);
    let (code, _) = run(&["--frobnicate"]);
    assert_eq!(code, 2);
}
