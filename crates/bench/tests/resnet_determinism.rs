//! The resnet binary must be a pure function of its flags: `--jobs` only
//! shards the timing sweep across threads, and the simcache state (cold
//! directory vs warm) must never leak into results — sweep points are
//! content-addressed, so cached and fresh timings are bit-identical. One
//! smoke run per `--jobs 1/2/8`, all sharing one cache directory (the
//! first run populates it, the rest hit it), plus a second warm `--jobs 1`
//! run, must produce byte-identical `--json` output.

use std::path::Path;
use std::process::Command;

fn run_resnet(jobs: u32, json: &Path, cache_dir: &Path) {
    let status = Command::new(env!("CARGO_BIN_EXE_resnet"))
        .args([
            "--smoke",
            "--jobs",
            &jobs.to_string(),
            "--json",
            json.to_str().unwrap(),
            "--cache-dir",
            cache_dir.to_str().unwrap(),
        ])
        .status()
        .expect("resnet binary runs");
    assert!(status.success(), "resnet --smoke --jobs {jobs} failed");
}

#[test]
fn byte_identical_json_across_jobs_and_cache_states() {
    let base = std::env::temp_dir().join(format!("resnet_det_{}", std::process::id()));
    std::fs::create_dir_all(&base).unwrap();
    let cache_dir = base.join("simcache");

    let mut outputs = Vec::new();
    for jobs in [1u32, 2, 8] {
        let json = base.join(format!("resnet_{jobs}.json"));
        run_resnet(jobs, &json, &cache_dir);
        outputs.push(std::fs::read(&json).expect("json written"));
    }
    assert!(!outputs[0].is_empty());
    assert_eq!(
        outputs[0], outputs[1],
        "--jobs 1 (cold simcache) vs --jobs 2 (warm) diverged"
    );
    assert_eq!(outputs[1], outputs[2], "--jobs 2 vs --jobs 8 diverged");

    // Fully warm repeat at the original job count: cache state itself must
    // not move a byte.
    let json = base.join("resnet_warm.json");
    run_resnet(1, &json, &cache_dir);
    assert_eq!(
        outputs[0],
        std::fs::read(&json).unwrap(),
        "cold vs warm simcache diverged"
    );

    std::fs::remove_dir_all(&base).ok();
}
