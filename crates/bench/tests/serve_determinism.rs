//! The serve binary must be a pure function of its flags: `--jobs` only
//! shards work across threads, and the host-side plan-cache state (cold
//! directory vs warm) must never leak into results — the cold/warm split
//! in the report is *modeled*, not measured on the host. So one smoke run
//! per `--jobs 1/2/8`, all sharing one plan directory (the first run
//! populates it, the rest hit it), must produce byte-identical `--json`
//! output.

use std::path::Path;
use std::process::Command;

fn run_serve(jobs: u32, json: &Path, plan_dir: &Path) {
    let status = Command::new(env!("CARGO_BIN_EXE_serve"))
        .args([
            "--smoke",
            "--seed",
            "99",
            "--jobs",
            &jobs.to_string(),
            "--json",
            json.to_str().unwrap(),
            "--plan-dir",
            plan_dir.to_str().unwrap(),
        ])
        .status()
        .expect("serve binary runs");
    assert!(status.success(), "serve --smoke --jobs {jobs} failed");
}

#[test]
fn byte_identical_json_across_jobs_and_cache_states() {
    let base = std::env::temp_dir().join(format!("serve_det_{}", std::process::id()));
    std::fs::create_dir_all(&base).unwrap();
    let plan_dir = base.join("plans");

    let mut outputs = Vec::new();
    for jobs in [1u32, 2, 8] {
        let json = base.join(format!("serve_{jobs}.json"));
        run_serve(jobs, &json, &plan_dir);
        outputs.push(std::fs::read(&json).expect("json written"));
    }
    assert!(!outputs[0].is_empty());
    assert_eq!(
        outputs[0], outputs[1],
        "--jobs 1 (cold plan dir) vs --jobs 2 (warm) diverged"
    );
    assert_eq!(outputs[1], outputs[2], "--jobs 2 vs --jobs 8 diverged");

    std::fs::remove_dir_all(&base).ok();
}
