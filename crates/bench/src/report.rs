//! Machine-readable experiment output: every experiment binary accepts
//! `--json <path>` and, when given, writes the numbers behind its printed
//! table as a JSON array of `{experiment, device, config, metrics}` records.

use crate::json::{obj, Json};

/// Collects one record per measured point and writes them all at exit.
pub struct Report {
    experiment: String,
    records: Vec<Json>,
    path: Option<String>,
}

impl Report {
    /// A report for `experiment`, writing to `--json <path>` if the flag was
    /// present on the command line (consumes nothing; binaries with their own
    /// arg parsing can use [`Report::to_path`]).
    pub fn from_args(experiment: &str) -> Self {
        Report::to_path(experiment, json_arg())
    }

    pub fn to_path(experiment: &str, path: Option<String>) -> Self {
        Report {
            experiment: experiment.to_string(),
            records: Vec::new(),
            path,
        }
    }

    /// Record one measured point. `config` identifies the grid point
    /// (layer, batch, algorithm, ...), `metrics` holds the measured values.
    pub fn add(&mut self, device: &str, config: &[(&str, Json)], metrics: &[(&str, Json)]) {
        self.records.push(obj(&[
            ("experiment", self.experiment.as_str().into()),
            ("device", device.into()),
            ("config", obj(config)),
            ("metrics", obj(metrics)),
        ]));
    }

    /// Write the collected records if a path was given. Call once, last.
    pub fn finish(&self) {
        let Some(path) = &self.path else { return };
        let body = render_records(&self.records);
        std::fs::write(path, &body)
            .unwrap_or_else(|e| panic!("failed to write --json {path}: {e}"));
        eprintln!("[json] wrote {} records to {path}", self.records.len());
    }
}

/// One record per line inside the array — grep-able, still valid JSON.
fn render_records(records: &[Json]) -> String {
    let mut s = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        s.push_str("  ");
        s.push_str(&r.render());
        if i + 1 < records.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("]\n");
    s
}

/// Extract `--json <path>` from the process arguments, if present.
pub fn json_arg() -> Option<String> {
    flag_value(&std::env::args().collect::<Vec<_>>(), "--json")
}

/// Find `<flag> <value>` in an argv slice.
pub fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn records_round_trip() {
        let mut r = Report::to_path("table2", None);
        r.add(
            "V100",
            &[("layer", "Conv2".into()), ("n", 64usize.into())],
            &[("speedup", 1.42f64.into())],
        );
        r.add(
            "V100",
            &[("layer", "Conv3".into())],
            &[("speedup", 2.0f64.into())],
        );
        let text = render_records(&r.records);
        let back = parse(&text).unwrap();
        let arr = back.as_arr().unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0].get("experiment").unwrap().as_str(), Some("table2"));
        assert_eq!(
            arr[0].get("config").unwrap().get("n").unwrap().as_f64(),
            Some(64.0)
        );
        assert_eq!(
            arr[1]
                .get("metrics")
                .unwrap()
                .get("speedup")
                .unwrap()
                .as_f64(),
            Some(2.0)
        );
    }

    #[test]
    fn flag_value_finds_pairs() {
        let args: Vec<String> = ["bin", "--json", "out.json", "--n", "64"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(flag_value(&args, "--json").as_deref(), Some("out.json"));
        assert_eq!(flag_value(&args, "--trace"), None);
        assert_eq!(flag_value(&args, "64"), None);
    }
}
