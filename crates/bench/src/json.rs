//! Hand-rolled JSON: a value tree, a renderer, and a small parser (used by
//! the tests to validate what the experiment binaries emit). No external
//! dependencies, by design — the container builds offline.
//!
//! Every experiment binary accepts `--json <path>` and writes an array of
//! records `{experiment, device, config, metrics}` via [`crate::report::Report`], so
//! downstream tooling can consume the same numbers the printed tables show.

use std::fmt::Write as _;

/// A JSON value. Objects keep insertion order (readable diffs).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::Num(v as f64)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::Num(v as f64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Num(v as f64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Num(v as f64)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Self {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

/// Build an object from `(key, value)` pairs.
pub fn obj(pairs: &[(&str, Json)]) -> Json {
    Json::Obj(
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect(),
    )
}

impl Json {
    /// Render to a compact JSON string.
    pub fn render(&self) -> String {
        let mut s = String::new();
        self.render_into(&mut s);
        s
    }

    fn render_into(&self, s: &mut String) {
        match self {
            Json::Null => s.push_str("null"),
            Json::Bool(b) => s.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => render_num(*n, s),
            Json::Str(v) => render_str(v, s),
            Json::Arr(items) => {
                s.push('[');
                for (i, it) in items.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    it.render_into(s);
                }
                s.push(']');
            }
            Json::Obj(pairs) => {
                s.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    render_str(k, s);
                    s.push(':');
                    v.render_into(s);
                }
                s.push('}');
            }
        }
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

fn render_num(n: f64, s: &mut String) {
    if !n.is_finite() {
        // JSON has no Inf/NaN; null is the conventional stand-in.
        s.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        let _ = write!(s, "{}", n as i64);
    } else {
        // `{:?}` prints the shortest string that round-trips the f64.
        let _ = write!(s, "{n:?}");
    }
}

fn render_str(v: &str, s: &mut String) {
    s.push('"');
    for ch in v.chars() {
        match ch {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(s, "\\u{:04x}", c as u32);
            }
            c => s.push(c),
        }
    }
    s.push('"');
}

/// Parse a JSON document (full grammar, `\uXXXX` surrogate pairs included —
/// tuner move logs embed instruction and control-code text in region names,
/// so strings must round-trip whatever an external tool re-escapes).
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        b: text.as_bytes(),
        i: 0,
    };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(format!("trailing garbage at byte {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.i < self.b.len() && self.b[self.i] == c {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.i))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.b.get(self.i) {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.i += 1;
                let mut items = Vec::new();
                self.ws();
                if self.b.get(self.i) == Some(&b']') {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.ws();
                    items.push(self.value()?);
                    self.ws();
                    if self.b.get(self.i) == Some(&b',') {
                        self.i += 1;
                    } else {
                        break;
                    }
                }
                self.eat(b']')?;
                Ok(Json::Arr(items))
            }
            Some(b'{') => {
                self.i += 1;
                let mut pairs = Vec::new();
                self.ws();
                if self.b.get(self.i) == Some(&b'}') {
                    self.i += 1;
                    return Ok(Json::Obj(pairs));
                }
                loop {
                    self.ws();
                    let k = self.string()?;
                    self.ws();
                    self.eat(b':')?;
                    self.ws();
                    pairs.push((k, self.value()?));
                    self.ws();
                    if self.b.get(self.i) == Some(&b',') {
                        self.i += 1;
                    } else {
                        break;
                    }
                }
                self.eat(b'}')?;
                Ok(Json::Obj(pairs))
            }
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| *c as char),
                self.i
            )),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    /// Four hex digits starting at byte `at`, as a code unit.
    fn hex4(&self, at: usize) -> Result<u32, String> {
        let hex = self.b.get(at..at + 4).ok_or("truncated \\u escape")?;
        u32::from_str_radix(std::str::from_utf8(hex).map_err(|e| e.to_string())?, 16)
            .map_err(|e| e.to_string())
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.i) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.hex4(self.i + 1)?;
                            self.i += 4;
                            let ch = match code {
                                // High surrogate: must pair with a following
                                // `\uDC00..=\uDFFF` low surrogate (JSON
                                // encodes astral-plane characters this way).
                                0xd800..=0xdbff => {
                                    if self.b.get(self.i + 1..self.i + 3) != Some(b"\\u") {
                                        return Err("lone high surrogate".into());
                                    }
                                    let low = self.hex4(self.i + 3)?;
                                    if !(0xdc00..=0xdfff).contains(&low) {
                                        return Err("lone high surrogate".into());
                                    }
                                    self.i += 6;
                                    let c = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                                    char::from_u32(c).ok_or("bad surrogate pair")?
                                }
                                0xdc00..=0xdfff => return Err("lone low surrogate".into()),
                                _ => char::from_u32(code).ok_or("bad \\u escape")?,
                            };
                            out.push(ch);
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.b[self.i..]).map_err(|e| e.to_string())?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.i += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        while self
            .b
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .map_err(|e| e.to_string())?
            .parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_reparses() {
        let v = obj(&[
            ("experiment", "table2".into()),
            ("speedup", 1.4000000000000001f64.into()),
            ("n", 128u64.into()),
            ("tags", vec!["a", "b\"c"].into()),
            ("nested", obj(&[("ok", true.into()), ("none", Json::Null)])),
        ]);
        let text = v.render();
        let back = parse(&text).unwrap();
        assert_eq!(back, v);
        assert_eq!(back.get("n").unwrap().as_f64(), Some(128.0));
        assert_eq!(
            back.get("tags").unwrap().as_arr().unwrap()[1].as_str(),
            Some("b\"c")
        );
    }

    #[test]
    fn integers_render_clean() {
        assert_eq!(Json::from(3u64).render(), "3");
        assert_eq!(Json::from(0.5f64).render(), "0.5");
        assert_eq!(Json::from(f64::NAN).render(), "null");
        assert_eq!(Json::from(-2i64).render(), "-2");
    }

    #[test]
    fn escapes_control_chars() {
        let s = Json::from("a\nb\t\"q\"\\\u{1}").render();
        assert_eq!(s, "\"a\\nb\\t\\\"q\\\"\\\\\\u0001\"");
        assert_eq!(parse(&s).unwrap().as_str(), Some("a\nb\t\"q\"\\\u{1}"));
    }

    #[test]
    fn instruction_text_region_names_round_trip() {
        // Tuner move logs embed disassembled instruction and control-code
        // text in region/move fields: brackets, dots, quotes, backslashes
        // and maxas-style `--:-:0:Y:4` prefixes must all survive a render →
        // parse → render cycle unchanged.
        for name in [
            "LDS.128 R32, [R70]",
            "--:-:0:Y:4  LDG.E.128 R4, [R2+0x10];",
            "01:-:2:Y:4",
            r#"region "main_loop" \ pass 2"#,
            "path\\to\\kernel \"ours\"",
        ] {
            let v = obj(&[("region", name.into()), ("cycles", 42u64.into())]);
            let text = v.render();
            let back = parse(&text).unwrap();
            assert_eq!(back.get("region").unwrap().as_str(), Some(name));
            assert_eq!(back.render(), text, "unstable render for {name:?}");
        }
    }

    #[test]
    fn surrogate_pairs_parse_and_lone_halves_fail() {
        // Astral-plane char via a JSON surrogate pair (external re-escapers
        // write these even though our renderer emits raw UTF-8).
        let escaped = "\"\\ud83d\\ude00\"";
        assert_eq!(parse(escaped).unwrap().as_str(), Some("\u{1f600}"));
        let embedded = "\"a\\ud83d\\ude00b\"";
        assert_eq!(parse(embedded).unwrap().as_str(), Some("a\u{1f600}b"));
        // Round trip through our own renderer (raw UTF-8 form).
        let v = Json::from("mark \u{1f600} end");
        assert_eq!(parse(&v.render()).unwrap(), v);
        // Lone or malformed halves are errors, not silent replacement.
        assert!(parse(r#""\ud83d""#).is_err());
        assert!(parse(r#""\ud83dx""#).is_err());
        assert!(parse(r#""\ud83dA""#).is_err());
        assert!(parse(r#""\ude00""#).is_err());
        assert!(parse(r#""\ud83d\ud83d""#).is_err());
    }

    #[test]
    fn parses_whitespace_and_empty() {
        assert_eq!(parse(" [ ] ").unwrap(), Json::Arr(vec![]));
        assert_eq!(parse("{ }").unwrap(), Json::Obj(vec![]));
        assert_eq!(parse("[1, 2,3]").unwrap().as_arr().unwrap().len(), 3);
        assert!(parse("[1,]2").is_err());
    }
}
