//! `metrics` — the `--metrics` hardware-counter layer shared by every
//! experiment binary.
//!
//! Passing `--metrics` to an experiment re-times each point's dominant
//! simulated kernel with [`gpusim::TimingOptions::counters`] on, classifies
//! the run with [`perfmodel::BottleneckReport`], and appends one extra
//! `--json` record per point with `config.kind == "metrics"` (the same
//! marker scheme the stall profile uses with `"profile"`). `convbench
//! --metrics` additionally prints the classification as a table.
//!
//! Counter collection changes no timing numbers (the cycle results are
//! bit-identical, asserted by `gpusim/tests/counter_invariants.rs`), but the
//! counted runs are cached under their own key — the plain timing digest
//! plus a `"metrics/v1"` tag — so warming the timing cache never pays for
//! counters and vice versa. Bump the tag when the metric schema changes.
//!
//! The committed `baselines/*.json` reports are built from these records and
//! gated by the `metricsdiff` binary in CI; metric names and the
//! [`perfmodel::Bound::name`] strings are therefore schema surface.

use gpusim::{DeviceSpec, KernelTiming};
use kernels::FusedConfig;
use perfmodel::BottleneckReport;
use wino_core::{Algo, Conv};

use crate::json::{obj, Json};
use crate::simcache::CacheKey;
use crate::sweep::Sweep;
use crate::Table;

/// Named metric list — what one `--json` metrics record holds.
pub type Metrics = Vec<(&'static str, Json)>;

/// Was `--metrics` passed on the command line?
pub fn wanted() -> bool {
    std::env::args().any(|a| a == "--metrics")
}

/// The metrics record for one counted kernel run: bottleneck classification
/// first, then the counter-derived rates. Requires `t.counters` (panics
/// otherwise — counted timings always carry them).
pub fn kernel_metrics(t: &KernelTiming) -> Metrics {
    let b = BottleneckReport::classify(t);
    let c = t
        .counters
        .as_ref()
        .expect("kernel_metrics needs a counted timing");
    vec![
        ("bound", b.bound.name().into()),
        ("headroom_pct", b.headroom_pct.into()),
        ("compute_pressure", b.compute_pressure.into()),
        ("dram_pressure", b.dram_pressure.into()),
        ("smem_pressure", b.smem_pressure.into()),
        ("kernel_time_us", (t.time_s * 1e6).into()),
        ("wave_cycles", t.wave_cycles.into()),
        ("issue_efficiency_pct", c.issue_efficiency_pct().into()),
        ("achieved_occupancy_pct", c.achieved_occupancy_pct().into()),
        ("eligible_warps_avg", c.eligible_warps_avg().into()),
        ("fp_pipe_util_pct", c.fp_pipe_util_pct().into()),
        ("mio_util_pct", c.mio_util_pct().into()),
        ("reg_bank_conflicts", c.reg_bank_conflicts.into()),
        ("reuse_hit_pct", c.reuse_hit_pct().into()),
        ("smem_extra_phases", c.smem_extra_phases.into()),
        ("l1_hit_pct", c.l1_hit_pct().into()),
        ("l2_hit_pct", c.l2_hit_pct().into()),
        ("dram_read_mb", (c.dram_read_bytes as f64 / 1e6).into()),
        ("dram_write_mb", (c.dram_write_bytes as f64 / 1e6).into()),
    ]
}

/// The metrics record for an analytic (roofline-only) phase: classification
/// from intensity alone, no counters to report.
pub fn analytic_metrics(dev: &DeviceSpec, intensity: f64) -> Metrics {
    let b = BottleneckReport::classify_analytic(dev, intensity);
    vec![
        ("bound", b.bound.name().into()),
        ("headroom_pct", b.headroom_pct.into()),
        ("compute_pressure", b.compute_pressure.into()),
        ("dram_pressure", b.dram_pressure.into()),
        ("smem_pressure", b.smem_pressure.into()),
        ("intensity", intensity.into()),
    ]
}

/// Tag a config with the `kind=metrics` marker that distinguishes metrics
/// records from the timing records of the same grid point.
pub fn metrics_config<'a>(base: &[(&'a str, Json)]) -> Vec<(&'a str, Json)> {
    let mut c = base.to_vec();
    c.push(("kind", "metrics".into()));
    c
}

fn tagged_key(mut d: gpusim::Digest) -> CacheKey {
    d.str("metrics/v1");
    CacheKey::from_digest(&d)
}

/// Counted-run metrics for every `(conv, algo)` point, on the sweep engine.
/// Returns records in registration order; `None` for the analytically
/// modeled FFT algorithms, which run no simulated kernel (their bottleneck
/// comes from [`analytic_metrics`] where an experiment wants one).
pub fn conv_metrics_sweep(name: &str, points: Vec<(Conv, Algo)>) -> Vec<Option<Json>> {
    let simulated: Vec<bool> = points
        .iter()
        .map(|(_, a)| !matches!(a, Algo::Fft | Algo::FftTiling))
        .collect();
    let mut sw = Sweep::from_args(name);
    for ((conv, algo), sim) in points.into_iter().zip(simulated.iter()) {
        if !sim {
            continue;
        }
        sw.point(tagged_key(conv.time_digest(algo)), move || {
            let t = conv.time_counted(algo).expect("simulated algo");
            obj(&kernel_metrics(&t))
        });
    }
    let mut results = sw.run().results.into_iter();
    simulated
        .into_iter()
        .map(|sim| sim.then(|| results.next().expect("one record per simulated point")))
        .collect()
}

/// Counted main-loop metrics for every `(conv, cfg)` point (the Figures 7–9
/// / ablation measurement), with `mainloop_tflops` included in each record.
pub fn mainloop_metrics_sweep(name: &str, points: Vec<(Conv, FusedConfig)>) -> Vec<Json> {
    let mut sw = Sweep::from_args(name);
    for (conv, cfg) in points {
        sw.point(tagged_key(conv.mainloop_digest(cfg)), move || {
            let (t, tflops) = conv.time_fused_mainloop_counted(cfg);
            let mut m = kernel_metrics(&t);
            m.push(("mainloop_tflops", tflops.into()));
            obj(&m)
        });
    }
    sw.run().results
}

/// `(device name, config pairs)` for one sweep point — what
/// [`add_conv_metrics_records`] needs to emit the point's report record.
pub type PointConfig = (String, Vec<(&'static str, Json)>);

/// Run the counted sweep over `points` and append one `kind=metrics` record
/// per simulated point to `report`; `config_of(index, algo)` names the
/// point. FFT points are silently skipped (no simulated kernel).
pub fn add_conv_metrics_records(
    report: &mut crate::report::Report,
    name: &str,
    points: Vec<(Conv, Algo)>,
    config_of: impl Fn(usize, Algo) -> PointConfig,
) {
    let algos: Vec<Algo> = points.iter().map(|(_, a)| *a).collect();
    for (i, (algo, rec)) in algos
        .into_iter()
        .zip(conv_metrics_sweep(name, points))
        .enumerate()
    {
        let Some(Json::Obj(fields)) = rec else {
            continue;
        };
        let metrics: Vec<(&str, Json)> = fields
            .iter()
            .map(|(k, v)| (k.as_str(), v.clone()))
            .collect();
        let (device, config) = config_of(i, algo);
        report.add(&device, &metrics_config(&config), &metrics);
    }
}

/// [`add_conv_metrics_records`] for main-loop points (Figures 7–9 /
/// ablation): every point simulates, so every point gets a record.
pub fn add_mainloop_metrics_records(
    report: &mut crate::report::Report,
    name: &str,
    points: Vec<(Conv, FusedConfig)>,
    config_of: impl Fn(usize) -> PointConfig,
) {
    for (i, rec) in mainloop_metrics_sweep(name, points).into_iter().enumerate() {
        let Json::Obj(fields) = rec else {
            unreachable!("metrics records are objects")
        };
        let metrics: Vec<(&str, Json)> = fields
            .iter()
            .map(|(k, v)| (k.as_str(), v.clone()))
            .collect();
        let (device, config) = config_of(i);
        report.add(&device, &metrics_config(&config), &metrics);
    }
}

/// Print metrics records as an aligned table (`convbench --metrics`).
/// `rows` pairs a point label with the record built by [`kernel_metrics`].
pub fn print_metrics_table(rows: &[(String, Json)]) {
    let pct = |m: &Json, k: &str| {
        m.get(k)
            .and_then(Json::as_f64)
            .map_or_else(|| "-".into(), |v| format!("{v:.1}"))
    };
    let mut t = Table::new(&[
        "kernel",
        "bound",
        "headroom%",
        "issue%",
        "occ%",
        "fp%",
        "mio%",
        "l2hit%",
        "dram MB",
    ]);
    for (label, m) in rows {
        let dram_mb = m.get("dram_read_mb").and_then(Json::as_f64).unwrap_or(0.0)
            + m.get("dram_write_mb").and_then(Json::as_f64).unwrap_or(0.0);
        t.row(vec![
            label.clone(),
            m.get("bound")
                .and_then(Json::as_str)
                .unwrap_or("-")
                .to_string(),
            pct(m, "headroom_pct"),
            pct(m, "issue_efficiency_pct"),
            pct(m, "achieved_occupancy_pct"),
            pct(m, "fp_pipe_util_pct"),
            pct(m, "mio_util_pct"),
            pct(m, "l2_hit_pct"),
            format!("{dram_mb:.2}"),
        ]);
    }
    t.print();
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpusim::DeviceSpec;
    use wino_core::ConvProblem;

    fn small_conv() -> Conv {
        // Same small problem the conv.rs unit tests use — fast to simulate.
        Conv::new(ConvProblem::resnet3x3(32, 8, 8, 64), DeviceSpec::v100())
    }

    #[test]
    fn kernel_metrics_names_are_stable() {
        // Metric names are baselines/metricsdiff schema surface.
        let t = small_conv()
            .time_counted(Algo::OursFused)
            .expect("simulated");
        let m = kernel_metrics(&t);
        let names: Vec<&str> = m.iter().map(|(k, _)| *k).collect();
        for want in [
            "bound",
            "headroom_pct",
            "kernel_time_us",
            "issue_efficiency_pct",
            "achieved_occupancy_pct",
            "smem_extra_phases",
            "l2_hit_pct",
            "dram_read_mb",
        ] {
            assert!(names.contains(&want), "missing metric {want}");
        }
        let o = obj(&m);
        assert!(o.get("bound").and_then(Json::as_str).is_some());
    }

    #[test]
    fn analytic_metrics_classify_from_intensity() {
        let m = analytic_metrics(&DeviceSpec::v100(), 0.25);
        assert_eq!(
            obj(&m).get("bound").and_then(Json::as_str),
            Some("dram"),
            "transform intensity sits under the ridge"
        );
    }

    #[test]
    fn metrics_config_appends_kind() {
        let c = metrics_config(&[("layer", "Conv2".into())]);
        assert_eq!(obj(&c).get("kind").and_then(Json::as_str), Some("metrics"));
    }
}
