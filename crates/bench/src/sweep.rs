//! `sweep` — the parallel experiment sweep engine.
//!
//! Every experiment binary replays one paper figure or table by evaluating a
//! grid of independent `(device, kernel build, config)` points, each of
//! which runs the cycle simulator ([`gpusim::timing::time_kernel`]) on its
//! own private [`gpusim::Gpu`]. Points share nothing, so the engine runs
//! them on a fixed-size host thread pool (`std::thread::scope`, the same
//! pattern as [`gpusim::Gpu::launch_parallel`]) and collects results **by
//! point index, never by completion order** — tables and `--json` records
//! are bit-identical to a serial run regardless of `--jobs`.
//!
//! Results are backed by the persistent content-addressed cache in
//! [`crate::simcache`]: a point whose [`CacheKey`] is already stored loads
//! from disk instead of simulating, so regenerating a figure after touching
//! one kernel re-simulates only the affected points and a warm rerun is
//! near-instant.
//!
//! Flags understood by every binary that calls [`Sweep::from_args`]:
//!
//! | flag | effect |
//! |---|---|
//! | `--jobs N` | worker threads (default: available parallelism) |
//! | `--no-cache` | neither read nor write the cache |
//! | `--cache` | force caching on (the default) |
//! | `--cache-dir PATH` | cache location (default `target/simcache/`) |
//! | `--selfcheck` | run every miss twice, assert identical result JSON |
//!
//! A `[sweep]` summary line (points, hits, misses, wall time) goes to
//! stderr, never stdout, so piped table output stays clean.
//!
//! The engine assumes (and `--selfcheck` verifies) that every point closure
//! is **deterministic**: the simulator is, and closures must not read
//! clocks, RNGs or ambient state. Cached and fresh runs are then
//! indistinguishable — the property the cache-correctness tests in
//! `bench/tests/sweep_cache.rs` pin down.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::json::Json;
use crate::report::flag_value;
use crate::simcache::{CacheKey, Store};

/// Engine configuration, usually parsed from the command line.
#[derive(Clone, Debug)]
pub struct SweepOptions {
    /// Worker threads for cache misses.
    pub jobs: usize,
    /// Consult and populate the persistent cache?
    pub cache: bool,
    /// Cache directory (ignored when `cache` is false).
    pub cache_dir: std::path::PathBuf,
    /// Determinism audit: evaluate every miss twice and assert that both
    /// runs render identical JSON before storing.
    pub selfcheck: bool,
    /// Suppress the `[sweep]` stderr summary (used by tests).
    pub quiet: bool,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            jobs: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            cache: true,
            cache_dir: Store::default_dir(),
            selfcheck: false,
            quiet: false,
        }
    }
}

impl SweepOptions {
    /// Parse `--jobs/--cache/--no-cache/--cache-dir/--selfcheck` from the
    /// process arguments; unrelated flags are ignored (each binary owns its
    /// own argument parsing).
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let mut o = SweepOptions::default();
        if let Some(j) = flag_value(&args, "--jobs") {
            o.jobs = j
                .parse::<usize>()
                .unwrap_or_else(|e| panic!("--jobs {j}: {e}"))
                .max(1);
        }
        if args.iter().any(|a| a == "--no-cache") {
            o.cache = false;
        }
        if args.iter().any(|a| a == "--cache") {
            o.cache = true;
        }
        if let Some(dir) = flag_value(&args, "--cache-dir") {
            o.cache_dir = dir.into();
        }
        if args.iter().any(|a| a == "--selfcheck") {
            o.selfcheck = true;
        }
        o
    }
}

/// Outcome of [`Sweep::run`]: per-point results in registration order plus
/// run statistics.
pub struct SweepOutcome {
    /// One record per registered point, in registration order.
    pub results: Vec<Json>,
    /// Points served from the persistent cache.
    pub hits: usize,
    /// Points simulated (and stored, when caching is on).
    pub misses: usize,
    /// Wall-clock of the whole run.
    pub elapsed_s: f64,
}

struct Point {
    key: CacheKey,
    run: Box<dyn Fn() -> Json + Send + Sync>,
}

/// A grid of independent experiment points with deterministic output order.
pub struct Sweep {
    name: String,
    opts: SweepOptions,
    points: Vec<Point>,
}

impl Sweep {
    pub fn new(name: &str, opts: SweepOptions) -> Self {
        Sweep {
            name: name.to_string(),
            opts,
            points: Vec::new(),
        }
    }

    /// Engine for `name` configured from the command line.
    pub fn from_args(name: &str) -> Self {
        Sweep::new(name, SweepOptions::from_args())
    }

    /// Register one grid point. `key` must content-address everything `f`
    /// depends on (see [`gpusim::digest`]); `f` must be deterministic. The
    /// closure is `Fn`, not `FnOnce`, so `--selfcheck` can evaluate it
    /// twice.
    pub fn point(&mut self, key: CacheKey, f: impl Fn() -> Json + Send + Sync + 'static) {
        self.points.push(Point {
            key,
            run: Box::new(f),
        });
    }

    /// Number of registered points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Evaluate every point — cache lookups first, then misses on the
    /// thread pool — and return results in registration order.
    pub fn run(self) -> SweepOutcome {
        let t0 = Instant::now();
        let n = self.points.len();
        let store = self.opts.cache.then(|| Store::new(&self.opts.cache_dir));

        let mut slots: Vec<Option<Json>> = Vec::with_capacity(n);
        let mut misses: Vec<usize> = Vec::new();
        for (i, p) in self.points.iter().enumerate() {
            match store.as_ref().and_then(|s| s.load(&p.key)) {
                Some(v) => slots.push(Some(v)),
                None => {
                    slots.push(None);
                    misses.push(i);
                }
            }
        }
        let hits = n - misses.len();

        if !misses.is_empty() {
            let workers = self.opts.jobs.max(1).min(misses.len());
            let cursor = AtomicUsize::new(0);
            let slots_mx = Mutex::new(&mut slots);
            let points = &self.points;
            let misses_ref = &misses;
            let selfcheck = self.opts.selfcheck;
            let store_ref = store.as_ref();
            std::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|| loop {
                        let next = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(&idx) = misses_ref.get(next) else {
                            break;
                        };
                        let point = &points[idx];
                        let value = (point.run)();
                        if selfcheck {
                            let again = (point.run)();
                            assert_eq!(
                                value.render(),
                                again.render(),
                                "sweep selfcheck: point {idx} (key {}) is not \
                                 deterministic — two runs produced different JSON",
                                point.key.as_str()
                            );
                        }
                        if let Some(st) = store_ref {
                            st.store(&point.key, &value);
                        }
                        slots_mx.lock().unwrap()[idx] = Some(value);
                    });
                }
            });
        }

        let results: Vec<Json> = slots
            .into_iter()
            .map(|s| s.expect("every sweep point produced a result"))
            .collect();
        let elapsed_s = t0.elapsed().as_secs_f64();
        if !self.opts.quiet {
            eprintln!(
                "[sweep] {}: {} points ({} cached, {} simulated) in {:.2}s  (jobs={}, cache={})",
                self.name,
                n,
                hits,
                misses.len(),
                elapsed_s,
                self.opts.jobs,
                match &store {
                    Some(s) => s.dir().display().to_string(),
                    None => "off".to_string(),
                },
            );
        }
        SweepOutcome {
            results,
            hits,
            misses: misses.len(),
            elapsed_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::obj;

    fn key(tag: u64) -> CacheKey {
        let mut d = gpusim::Digest::new();
        d.u64(tag);
        CacheKey::from_digest(&d)
    }

    fn opts(cache: bool, jobs: usize) -> SweepOptions {
        SweepOptions {
            jobs,
            cache,
            cache_dir: std::env::temp_dir().join(format!("sweep-unit-{}", std::process::id())),
            selfcheck: true,
            quiet: true,
        }
    }

    #[test]
    fn results_follow_registration_order() {
        // Uncached, many points, several workers: order must be by index.
        let mut sw = Sweep::new("unit", opts(false, 4));
        for i in 0..64u64 {
            sw.point(key(i), move || obj(&[("i", i.into())]));
        }
        let out = sw.run();
        assert_eq!(out.hits, 0);
        assert_eq!(out.misses, 64);
        for (i, r) in out.results.iter().enumerate() {
            assert_eq!(r.get("i").unwrap().as_f64(), Some(i as f64));
        }
    }

    #[test]
    fn warm_run_hits_every_point() {
        let o = opts(true, 2);
        let dir = o.cache_dir.clone();
        std::fs::remove_dir_all(&dir).ok();
        let build = |o: SweepOptions| {
            let mut sw = Sweep::new("unit-warm", o);
            for i in 100..108u64 {
                sw.point(key(i), move || obj(&[("v", (i * 3).into())]));
            }
            sw
        };
        let cold = build(o.clone()).run();
        assert_eq!((cold.hits, cold.misses), (0, 8));
        let warm = build(o).run();
        assert_eq!((warm.hits, warm.misses), (8, 0));
        let warm_json: Vec<String> = warm.results.iter().map(|r| r.render()).collect();
        let cold_json: Vec<String> = cold.results.iter().map(|r| r.render()).collect();
        assert_eq!(warm_json, cold_json);
        std::fs::remove_dir_all(&dir).ok();
    }
}
