//! `tune` — the two-tier simulator-guided SASS autotuner (ISSUE 5, rebuilt
//! as the v2 search in ISSUE 9).
//!
//! The paper's fused-kernel schedule is hand-tuned (§5.1.4, §6); this
//! binary closes the loop the authors walked by hand, then tries to walk
//! past them. Per device:
//!
//! **Tier 2 — emitter parameters.** Every legal point of the
//! `kernels::EmitterParams` grid (`bk` blocking, filter LDG width,
//! fragment pipelining depth; 5 of 108 grid points are emittable) is
//! emitted, lint-checked and functionally differential-checked (bit-exact
//! against the other variants, tolerance-checked against a direct
//! convolution), then handed to Tier 1 under successive halving: rung `r`
//! anneals each survivor with a `2^r`-scaled budget and keeps the best
//! 5 → 3 → 2 → 1.
//!
//! **Tier 1 — island annealing** (`sass::island`). N independent annealing
//! chains seeded from the detuned baseline, the hand schedule, and
//! greedy-tightened variants of both, with ring migration of best
//! candidates at epoch barriers and a per-region × per-move-family
//! adaptive proposal policy (`sass::tune::AdaptivePolicy`) whose priors
//! come from the profiled region stall shares
//! (`perfmodel::region_move_weights`). Objective: `gpusim::BatchTimer`
//! one-wave cycles (decode once, re-patch control codes per candidate),
//! memoized in `simcache` under the `tune/v2` digest tag. Byte-identical
//! for any `--jobs`.
//!
//! Three runs per device, all recorded in `BENCH_tune.json` (schema v2):
//!
//! 1. *recovery* — full island lineup from the naive baseline on the proxy
//!    shape; gate: tuned within 3% of the hand schedule (≥97% recovery);
//! 2. *tier2* — the successive-halving table and its winning point;
//! 3. *conv2_n32* — ResNet Conv2 at N=32 (a Table 2 shape), islands seeded
//!    from the hand schedule; the tuned schedule must strictly beat the
//!    hand schedule under the **multi-wave device model** on at least one
//!    device, and each winner is published to the serve-layer schedule
//!    store (`serve::schedstore`) so plan building replays it.
//!
//! Flags: `--budget N` (anneal steps per island, default 400), `--islands N`
//! (default 6), `--epochs N` (migration barriers, default 4), `--jobs N`
//! (worker threads, default 1 — results are identical for any value),
//! `--seed S` (default 2020), `--trajectory full|trimmed` (default
//! trimmed: strict improvements + every 16th accepted move), `--json PATH`
//! (default `BENCH_tune.json`), `--smoke` (V100 only: 2 islands, tiny
//! budget, runs twice with `--jobs 1` and `--jobs 2` and asserts
//! byte-identical outcomes + monotone best-so-far), `--verify` (assert the
//! schedule digests of this re-run appear in the committed JSON),
//! `--no-cache`, `--cache-dir DIR`.

use bench::json::{obj, Json};
use bench::report::{flag_value, Report};
use bench::simcache::{timing_from_json, timing_to_json, CacheKey, SimStore, Store};
use bench::Table;
use gpusim::digest::module_digest;
use gpusim::{
    time_kernel_device, timing, BatchTimer, DeviceOptions, DeviceSpec, Digest, Gpu, KernelTiming,
    LaunchDims, ParamBuilder, TimingOptions,
};
use kernels::filter_transform::emit_filter_transform;
use kernels::{EmitterParams, FusedConfig, FusedKernel};
use perfmodel::{move_weights, region_move_weights, BottleneckReport};
use sass::island::{run_islands, IslandConfig, IslandOutcome, Priors, SeedKind};
use sass::lint::lint;
use sass::tune::{MoveFamily, TrajectoryMode, TuneRegion};
use sass::{Instruction, Module};
use serve::schedstore::{ScheduleStore, StoredSchedule};
use tensor::XorShiftRng;

/// Proxy problem for the Tier-2 search and the recovery gate: one fused
/// tile grid, small enough that thousands of cycle-level simulations stay
/// interactive but with every mechanism live (yield, reuse, scoreboards,
/// smem phases, DRAM).
fn proxy_config() -> FusedConfig {
    FusedConfig::ours(32, 8, 8, 32, 64)
}

/// The beat-the-hand-schedule shape: ResNet Conv2 at N=32, a Table 2
/// point. Exactly the config serve's `Planner` consults in the schedule
/// store for the Conv2 class at its smallest batch, so the published
/// winner is what plan building replays.
fn conv2_config() -> FusedConfig {
    FusedConfig::ours(64, 56, 56, 32, 64)
}

struct Flags {
    budget: u64,
    islands: usize,
    epochs: u64,
    jobs: usize,
    seed: u64,
    traj: TrajectoryMode,
}

// ---- shared evaluation plumbing ---------------------------------------------

/// Everything one shape's objective needs. The decoded [`BatchTimer`] is
/// cloned per island, so operand analysis happens once per module.
struct EvalCtx<'a> {
    dev: &'a DeviceSpec,
    base: Module,
    timer: BatchTimer,
    dims: LaunchDims,
    params: Vec<u8>,
    opts: TimingOptions,
    alloc_bytes: [u64; 3],
    capacity: usize,
    store: Option<&'a Store>,
}

impl<'a> EvalCtx<'a> {
    fn new(dev: &'a DeviceSpec, kern: &FusedKernel, store: Option<&'a Store>) -> EvalCtx<'a> {
        let cfg = kern.config;
        let (c, h, w, n, k) = (
            cfg.c as u64,
            cfg.h as u64,
            cfg.w as u64,
            cfg.n as u64,
            cfg.k as u64,
        );
        let alloc_bytes = [c * h * w * n * 4, c * 16 * k * 4, k * h * w * n * 4];
        // Capacity only bounds allocation; it is not part of any digest.
        let capacity = (alloc_bytes.iter().sum::<u64>() + (1 << 20)).next_power_of_two() as usize;
        let dims = kern.launch_dims();
        let params = {
            // Fixed addresses: allocation order is deterministic, so build
            // the parameter block once against a scratch GPU.
            let mut gpu = Gpu::new(dev.clone(), capacity);
            let a = gpu.alloc(alloc_bytes[0]);
            let b = gpu.alloc(alloc_bytes[1]);
            let o = gpu.alloc(alloc_bytes[2]);
            kern.params(a, b, o)
        };
        let opts = TimingOptions {
            region: Some(kern.region),
            ..Default::default()
        };
        EvalCtx {
            dev,
            base: kern.module.clone(),
            timer: BatchTimer::new(&kern.module),
            dims,
            params,
            opts,
            alloc_bytes,
            capacity,
            store,
        }
    }
}

/// One simulation of `insts` as a module, memoized by content address
/// under the `tune/v2` tag. Returns one-wave cycles.
fn evaluate(
    insts: &[Instruction],
    perm: &[u32],
    timer: &mut BatchTimer,
    ctx: &EvalCtx,
) -> Option<u64> {
    assert!(lint(insts).is_empty(), "illegal candidate reached evaluate");
    let cand = Module::new(
        &ctx.base.info.name,
        ctx.base.info.smem_bytes,
        ctx.base.info.param_bytes,
        insts.to_vec(),
    );
    let key = {
        let mut d = Digest::new();
        ctx.dev.digest_into(&mut d);
        module_digest(&cand, &mut d);
        ctx.dims.digest_into(&mut d);
        d.u64(ctx.params.len() as u64).bytes(&ctx.params);
        ctx.opts.digest_into(&mut d);
        d.str("tune/v2");
        CacheKey::from_digest(&d)
    };
    if let Some(s) = ctx.store {
        if let Some(t) = s.load(&key).as_ref().and_then(timing_from_json) {
            return Some(t.wave_cycles);
        }
    }
    let mut gpu = Gpu::new(ctx.dev.clone(), ctx.capacity);
    for &b in &ctx.alloc_bytes {
        gpu.alloc(b);
    }
    let t = timer
        .time(&mut gpu, &cand, perm, ctx.dims, &ctx.params, ctx.opts)
        .expect("candidate timing failed");
    if let Some(s) = ctx.store {
        s.store(&key, &timing_to_json(&t));
    }
    Some(t.wave_cycles)
}

/// Run the island search with per-island clones of the context's timer.
fn islands_over(
    ctx: &EvalCtx,
    start: &[Instruction],
    regions: &[TuneRegion],
    priors: &Priors,
    icfg: &IslandConfig,
) -> IslandOutcome {
    run_islands(start, regions, priors, icfg, |_| {
        let mut timer = ctx.timer.clone();
        move |insts: &[Instruction], perm: &[u32]| evaluate(insts, perm, &mut timer, ctx)
    })
}

fn regions_of(kern: &FusedKernel) -> Vec<TuneRegion> {
    kern.regions
        .iter()
        .map(|r| TuneRegion {
            name: r.name.clone(),
            start: r.start,
            end: r.end,
        })
        .collect()
}

/// Profile `kern` once (cold, uncached — profiling options change the
/// digest anyway) and aim the search: per-region proposal odds from the
/// stall/issue cycle split, family weights from the classified bottleneck,
/// per-region family priors from the profiled stall shares.
fn profile_priors(
    ctx: &EvalCtx,
    kern: &FusedKernel,
    regions: &[TuneRegion],
) -> (&'static str, Priors) {
    let mut gpu = Gpu::new(ctx.dev.clone(), ctx.capacity);
    for &b in &ctx.alloc_bytes {
        gpu.alloc(b);
    }
    let popts = TimingOptions {
        profile: true,
        counters: true,
        ..ctx.opts
    };
    let mut t = timing::time_kernel(&mut gpu, &kern.module, ctx.dims, &ctx.params, popts)
        .expect("profile run failed");
    let names: Vec<String> = regions.iter().map(|r| r.name.clone()).collect();
    let totals = t.profile.as_mut().map(|prof| {
        prof.regions = kern.regions.clone();
        prof.region_totals()
    });
    let report = BottleneckReport::classify(&t);
    let mut priors = Priors {
        weights: move_weights(&report),
        region_weights: None,
        region_priors: None,
    };
    if let Some(totals) = totals {
        priors.region_weights = Some(
            names
                .iter()
                .map(|n| {
                    totals
                        .iter()
                        .find(|(name, _, _)| name == n)
                        .map_or(1.0, |&(_, issue, stall)| (issue + stall) as f64 + 1.0)
                })
                .collect(),
        );
        priors.region_priors = Some(region_move_weights(&report, &totals, &names));
    }
    (report.bound.name(), priors)
}

fn digest_of(m: &Module) -> String {
    let mut d = Digest::new();
    module_digest(m, &mut d);
    d.hex()
}

fn module_with(base: &Module, insts: Vec<Instruction>) -> Module {
    Module::new(
        &base.info.name,
        base.info.smem_bytes,
        base.info.param_bytes,
        insts,
    )
}

// ---- functional differential check ------------------------------------------

/// Direct convolution reference (3×3, pad 1, stride 1), CHWN/CRSK/KHWN.
fn reference(cfg: &FusedConfig, input: &[f32], filter: &[f32]) -> Vec<f32> {
    let (c_d, h_d, w_d, n_d, k_d) = (
        cfg.c as usize,
        cfg.h as usize,
        cfg.w as usize,
        cfg.n as usize,
        cfg.k as usize,
    );
    let mut out = vec![0.0f32; k_d * h_d * w_d * n_d];
    for k in 0..k_d {
        for y in 0..h_d {
            for x in 0..w_d {
                for n in 0..n_d {
                    let mut acc = 0.0f32;
                    for c in 0..c_d {
                        for r in 0..3 {
                            let iy = y as isize + r as isize - 1;
                            if iy < 0 || iy >= h_d as isize {
                                continue;
                            }
                            for s in 0..3 {
                                let ix = x as isize + s as isize - 1;
                                if ix < 0 || ix >= w_d as isize {
                                    continue;
                                }
                                let iv =
                                    input[((c * h_d + iy as usize) * w_d + ix as usize) * n_d + n];
                                let fv = filter[((c * 3 + r) * 3 + s) * k_d + k];
                                acc += iv * fv;
                            }
                        }
                    }
                    out[((k * h_d + y) * w_d + x) * n_d + n] = acc;
                }
            }
        }
    }
    out
}

/// Functional gate on the Tier-2 grid at the proxy shape: every legal
/// point must emit lint-clean and compute output bit-exact against every
/// other point (and within the usual Winograd tolerance of a direct
/// convolution). Device-independent, so it runs once per invocation.
fn differential_check() {
    let base = proxy_config();
    let (c, h, w, n, k) = (
        base.c as usize,
        base.h as usize,
        base.w as usize,
        base.n as usize,
        base.k as usize,
    );
    let mut rng = XorShiftRng::new(0x7157);
    let input: Vec<f32> = (0..c * h * w * n)
        .map(|_| rng.gen_range(-1.0, 1.0))
        .collect();
    let filter: Vec<f32> = (0..c * 9 * k).map(|_| rng.gen_range(-1.0, 1.0)).collect();

    let mut gpu = Gpu::new(DeviceSpec::v100(), 1 << 26);
    let d_in = gpu.alloc_upload_f32(&input);
    let d_filt = gpu.alloc_upload_f32(&filter);
    let d_tf = gpu.alloc((c * 16 * k) as u64 * 4);
    let d_out = gpu.alloc((k * h * w * n) as u64 * 4);
    let fx = emit_filter_transform(base.c, base.k);
    let fx_params = ParamBuilder::new().push_ptr(d_filt).push_ptr(d_tf).build();
    gpu.launch_parallel(
        &fx,
        LaunchDims::linear(base.c * base.k / 256, 256),
        &fx_params,
    )
    .expect("filter transform");

    let want = reference(&base, &input, &filter);
    let mut anchor: Option<Vec<f32>> = None;
    for p in EmitterParams::legal_points() {
        let kern = FusedKernel::emit(p.apply(base));
        assert!(
            lint(&kern.module.insts).is_empty(),
            "{}: emitted kernel fails lint",
            p.label()
        );
        gpu.mem
            .upload_f32(d_out, &vec![f32::NAN; k * h * w * n])
            .unwrap();
        let params = kern.params(d_in, d_tf, d_out);
        gpu.launch_parallel(&kern.module, kern.launch_dims(), &params)
            .unwrap_or_else(|e| panic!("{}: failed to execute: {e}", p.label()));
        let got = gpu.mem.download_f32(d_out, k * h * w * n).unwrap();
        let rep = tensor::compare(&want, &got, 1e-3, 1e-3);
        assert!(rep.num_bad == 0, "{} vs direct reference: {rep}", p.label());
        match &anchor {
            None => anchor = Some(got),
            Some(a) => assert!(
                a.iter().zip(&got).all(|(x, y)| x.to_bits() == y.to_bits()),
                "{}: output differs bit-for-bit from the anchor variant",
                p.label()
            ),
        }
    }
    println!(
        "differential: {} legal emitter points, all lint-clean, bit-exact, reference-checked",
        EmitterParams::legal_points().len()
    );
}

// ---- tier 2: successive halving over emitter parameters ---------------------

struct Tier2Point {
    params: EmitterParams,
    hand_cycles: u64,
    best_cycles: u64,
    evals: u64,
    rungs: usize,
}

/// Successive halving on the legal emitter grid at the proxy shape:
/// rung `r` gives each survivor a `2^r`-scaled island budget and keeps
/// 5 → 3 → 2 → 1 (ties broken toward grid order, so the result is
/// deterministic).
fn tier2_search(dev: &DeviceSpec, store: Option<&Store>, f: &Flags) -> (Vec<Tier2Point>, usize) {
    let points = EmitterParams::legal_points();
    let b0 = (f.budget / 10).max(4);
    let mut rows: Vec<Tier2Point> = points
        .iter()
        .map(|&params| Tier2Point {
            params,
            hand_cycles: 0,
            best_cycles: u64::MAX,
            evals: 0,
            rungs: 0,
        })
        .collect();
    let mut survivors: Vec<usize> = (0..points.len()).collect();
    for (r, keep) in [3usize, 2, 1].into_iter().enumerate() {
        let rung_budget = b0 << r;
        for &idx in &survivors {
            let p = points[idx];
            let kern = FusedKernel::emit(p.apply(proxy_config()));
            let ctx = EvalCtx::new(dev, &kern, store);
            let regions = regions_of(&kern);
            let (_, priors) = profile_priors(&ctx, &kern, &regions);
            let mut icfg = IslandConfig::new(2, 2, (rung_budget / 2).max(1), f.seed);
            icfg.seeds = vec![SeedKind::Hand, SeedKind::HandGreedy];
            icfg.jobs = f.jobs;
            let outcome = islands_over(&ctx, &kern.module.insts, &regions, &priors, &icfg);
            rows[idx].hand_cycles = outcome.per_island[0].start_cost;
            rows[idx].best_cycles = outcome.best_cost;
            rows[idx].evals += outcome.stats.evals;
            rows[idx].rungs = r + 1;
        }
        survivors.sort_by_key(|&i| (rows[i].best_cycles, i));
        survivors.truncate(keep);
    }
    (rows, survivors[0])
}

// ---- recovery run (proxy shape, full island lineup) -------------------------

struct RecoveryRun {
    bound: &'static str,
    naive_cycles: u64,
    hand_cycles: u64,
    tuned_cycles: u64,
    outcome: IslandOutcome,
    region_names: Vec<String>,
    schedule_digest: String,
}

impl RecoveryRun {
    fn recovered_pct(&self) -> f64 {
        100.0 * self.hand_cycles as f64 / self.tuned_cycles as f64
    }
    /// Fraction of the naive→hand cycle gap the search closed.
    fn gap_closed_pct(&self) -> f64 {
        let gap = self.naive_cycles.saturating_sub(self.hand_cycles) as f64;
        if gap == 0.0 {
            return 100.0;
        }
        100.0 * self.naive_cycles.saturating_sub(self.tuned_cycles) as f64 / gap
    }
}

fn recovery_run(dev: &DeviceSpec, store: Option<&Store>, f: &Flags) -> RecoveryRun {
    let hand = FusedKernel::emit(proxy_config());
    let naive = FusedKernel::emit_detuned(proxy_config());
    let ctx = EvalCtx::new(dev, &hand, store);
    let regions = regions_of(&hand);
    let region_names: Vec<String> = regions.iter().map(|r| r.name.clone()).collect();
    // Aim the search by profiling the *detuned* baseline — where the naive
    // schedule burns cycles is where the recovery search must move.
    let (bound, priors) = profile_priors(&ctx, &naive, &regions);

    let ident: Vec<u32> = (0..hand.module.insts.len() as u32).collect();
    let mut timer = ctx.timer.clone();
    let hand_cycles = evaluate(&hand.module.insts, &ident, &mut timer, &ctx).unwrap();

    let mut icfg = IslandConfig::new(f.islands, f.epochs, (f.budget / f.epochs).max(1), f.seed);
    icfg.jobs = f.jobs;
    icfg.traj_mode = f.traj;
    let outcome = islands_over(&ctx, &hand.module.insts, &regions, &priors, &icfg);
    let naive_cycles = outcome
        .per_island
        .iter()
        .find(|s| s.seed_kind == SeedKind::Detuned)
        .map(|s| s.start_cost)
        .expect("lineup has a detuned island");
    let schedule_digest = digest_of(&module_with(&ctx.base, outcome.best_insts.clone()));
    RecoveryRun {
        bound,
        naive_cycles,
        hand_cycles,
        tuned_cycles: outcome.best_cost,
        outcome,
        region_names,
        schedule_digest,
    }
}

// ---- conv2@32: beat the hand schedule, publish for serve --------------------

struct Conv2Run {
    params_label: String,
    hand_wave_cycles: u64,
    tuned_wave_cycles: u64,
    hand_device_cycles: u64,
    tuned_device_cycles: u64,
    beats_hand: bool,
    evals: u64,
    schedule_digest: String,
    stored: bool,
}

fn conv2_run(
    dev: &DeviceSpec,
    store: Option<&Store>,
    publish: Option<&SimStore>,
    f: &Flags,
) -> Conv2Run {
    let cfg = conv2_config();
    let hand = FusedKernel::emit(cfg);
    let ctx = EvalCtx::new(dev, &hand, store);
    let regions = regions_of(&hand);
    // Profile the *hand* schedule: the search starts there, so the priors
    // should point at whatever stalls the authors left on the table.
    let (_, priors) = profile_priors(&ctx, &hand, &regions);

    let mut icfg = IslandConfig::new(2, 2, (f.budget / 2).max(1), f.seed);
    icfg.seeds = vec![SeedKind::Hand, SeedKind::HandGreedy];
    icfg.jobs = f.jobs;
    icfg.traj_mode = f.traj;
    let outcome = islands_over(&ctx, &hand.module.insts, &regions, &priors, &icfg);
    let hand_wave_cycles = outcome.per_island[0].start_cost;
    let best = module_with(&ctx.base, outcome.best_insts.clone());
    let schedule_digest = digest_of(&best);

    // The claim that matters is multi-wave: time both schedules through the
    // full device model and compare whole-kernel cycles.
    let dopts = DeviceOptions {
        base: ctx.opts,
        ..Default::default()
    };
    let time_device = |m: &Module| -> KernelTiming {
        let mut gpu = Gpu::new(dev.clone(), ctx.capacity);
        for &b in &ctx.alloc_bytes {
            gpu.alloc(b);
        }
        time_kernel_device(&mut gpu, m, ctx.dims, &ctx.params, dopts).expect("device sim failed")
    };
    let hand_t = time_device(&hand.module);
    let tuned_t = time_device(&best);
    let device_cycles = |t: &KernelTiming| (t.time_s * dev.clock_hz).round() as u64;
    let (hand_device_cycles, tuned_device_cycles) =
        (device_cycles(&hand_t), device_cycles(&tuned_t));
    let beats_hand =
        outcome.best_cost < hand_wave_cycles && tuned_device_cycles < hand_device_cycles;

    let mut stored = false;
    let params_label = EmitterParams::hand().label();
    if beats_hand {
        if let Some(sim) = publish {
            ScheduleStore::new(sim).save(
                dev,
                &cfg,
                &StoredSchedule {
                    params: params_label.clone(),
                    schedule_digest: schedule_digest.clone(),
                    cubin: best.to_cubin(),
                    hand_cycles: hand_device_cycles,
                    tuned_cycles: tuned_device_cycles,
                    evals: outcome.stats.evals,
                },
            );
            stored = true;
        }
    }
    Conv2Run {
        params_label,
        hand_wave_cycles,
        tuned_wave_cycles: outcome.best_cost,
        hand_device_cycles,
        tuned_device_cycles,
        beats_hand,
        evals: outcome.stats.evals,
        schedule_digest,
        stored,
    }
}

// ---- smoke ------------------------------------------------------------------

/// Tiny fixed-seed island run on V100, executed twice — `jobs = 1` and
/// `jobs = 2` — asserting byte-identical outcomes, a monotone best-so-far
/// trace, and at least one accepted improving move.
fn smoke(seed: u64, report: &mut Report) {
    let dev = DeviceSpec::v100();
    let hand = FusedKernel::emit(proxy_config());
    let ctx = EvalCtx::new(&dev, &hand, None);
    let regions = regions_of(&hand);
    let priors = Priors::default();
    let run = |jobs: usize| {
        let mut icfg = IslandConfig::new(2, 2, 15, seed);
        icfg.seeds = vec![SeedKind::Detuned, SeedKind::Hand];
        icfg.jobs = jobs;
        islands_over(&ctx, &hand.module.insts, &regions, &priors, &icfg)
    };
    let a = run(1);
    let b = run(2);

    assert_eq!(
        a.best_cost, b.best_cost,
        "smoke: best cost differs across --jobs"
    );
    assert_eq!(
        a.best_insts, b.best_insts,
        "smoke: best stream differs across --jobs"
    );
    assert_eq!(
        a.best_perm, b.best_perm,
        "smoke: best perm differs across --jobs"
    );
    assert_eq!(
        a.best_trace, b.best_trace,
        "smoke: best trace differs across --jobs"
    );
    assert_eq!(
        a.winner, b.winner,
        "smoke: winner island differs across --jobs"
    );
    for (x, y) in a.per_island.iter().zip(&b.per_island) {
        assert_eq!(
            x.start_cost, y.start_cost,
            "smoke: island start differs across --jobs"
        );
        assert_eq!(
            x.best_cost, y.best_cost,
            "smoke: island best differs across --jobs"
        );
        assert_eq!(
            x.migrations_in, y.migrations_in,
            "smoke: migrations differ across --jobs"
        );
        for (s, t) in [
            (x.stats.proposed, y.stats.proposed),
            (x.stats.inapplicable, y.stats.inapplicable),
            (x.stats.illegal, y.stats.illegal),
            (x.stats.evals, y.stats.evals),
            (x.stats.failed, y.stats.failed),
            (x.stats.accepted, y.stats.accepted),
        ] {
            assert_eq!(s, t, "smoke: island counters differ across --jobs");
        }
        assert_eq!(
            x.accept_rates, y.accept_rates,
            "smoke: learned rates differ across --jobs"
        );
    }
    assert!(
        a.best_trace.windows(2).all(|w| w[1] <= w[0]),
        "smoke: best-so-far trace is not monotone: {:?}",
        a.best_trace
    );
    assert!(a.stats.accepted >= 1, "smoke: no accepted move");
    let naive_start = a.per_island[0].start_cost;
    assert!(
        a.best_cost < naive_start,
        "smoke: no improvement over the detuned baseline ({naive_start} -> {})",
        a.best_cost
    );

    report.add(
        "V100",
        &[
            ("schema", 2u32.into()),
            ("phase", "smoke".into()),
            ("islands", 2u32.into()),
            ("epochs", 2u32.into()),
            ("steps_per_epoch", 15u32.into()),
            ("seed", seed.into()),
        ],
        &[
            ("naive_cycles", naive_start.into()),
            ("tuned_cycles", a.best_cost.into()),
            ("accepted", a.stats.accepted.into()),
            ("evals", a.stats.evals.into()),
            ("jobs_deterministic", true.into()),
        ],
    );
    println!("smoke OK: jobs-1 and jobs-2 runs byte-identical, best-so-far monotone");
}

// ---- reporting --------------------------------------------------------------

fn trajectory_json(traj: &[sass::tune::TrajPoint], region_names: &[String]) -> Json {
    Json::Arr(
        traj.iter()
            .map(|p| {
                obj(&[
                    ("step", p.step.into()),
                    ("move", p.kind.name().into()),
                    ("pc", p.pc.into()),
                    (
                        "region",
                        region_names
                            .get(p.region)
                            .map_or("?", |s| s.as_str())
                            .into(),
                    ),
                    ("cycles", p.cycles.into()),
                ])
            })
            .collect(),
    )
}

fn per_island_json(outcome: &IslandOutcome) -> Json {
    Json::Arr(
        outcome
            .per_island
            .iter()
            .map(|s| {
                obj(&[
                    ("island", s.island.into()),
                    ("seed", s.seed_kind.name().into()),
                    ("start_cycles", s.start_cost.into()),
                    ("best_cycles", s.best_cost.into()),
                    ("accepted", s.stats.accepted.into()),
                    ("evals", s.stats.evals.into()),
                    ("migrations_in", s.migrations_in.into()),
                ])
            })
            .collect(),
    )
}

/// The winner island's learned per-region × per-family acceptance rates.
fn accept_rates_json(outcome: &IslandOutcome, region_names: &[String]) -> Json {
    let winner = &outcome.per_island[outcome.winner];
    Json::Arr(
        winner
            .accept_rates
            .iter()
            .enumerate()
            .map(|(r, rates)| {
                let mut fields: Vec<(&str, Json)> = vec![(
                    "region",
                    region_names.get(r).map_or("?", |s| s.as_str()).into(),
                )];
                for (f, rate) in MoveFamily::ALL.iter().zip(rates) {
                    fields.push((f.name(), (*rate).into()));
                }
                obj(&fields)
            })
            .collect(),
    )
}

fn u64s_json(v: &[u64]) -> Json {
    Json::Arr(v.iter().map(|&x| x.into()).collect())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke_mode = args.iter().any(|a| a == "--smoke");
    let verify = args.iter().any(|a| a == "--verify");
    let flags = Flags {
        budget: flag_value(&args, "--budget").map_or(400, |v| v.parse().expect("--budget N")),
        islands: flag_value(&args, "--islands").map_or(6, |v| v.parse().expect("--islands N")),
        epochs: flag_value(&args, "--epochs").map_or(4, |v| v.parse().expect("--epochs N")),
        jobs: flag_value(&args, "--jobs").map_or(1, |v| v.parse().expect("--jobs N")),
        seed: flag_value(&args, "--seed").map_or(2020, |v| v.parse().expect("--seed S")),
        traj: match flag_value(&args, "--trajectory").as_deref() {
            Some("full") => TrajectoryMode::Full,
            _ => TrajectoryMode::default(),
        },
    };
    let json_path = flag_value(&args, "--json").unwrap_or_else(|| "BENCH_tune.json".into());
    let no_cache = args.iter().any(|a| a == "--no-cache");
    let cache_dir = flag_value(&args, "--cache-dir").map_or_else(Store::default_dir, Into::into);
    let store = (!no_cache).then(|| Store::new(&cache_dir));
    // Tuned-schedule publishing shares the cache directory with serve's
    // plan store ("tune once, serve forever" across processes).
    let publish = (!no_cache).then(|| SimStore(Store::new(&cache_dir)));

    let mut report = Report::to_path("tune", Some(json_path.clone()));
    if smoke_mode {
        smoke(flags.seed, &mut report);
        report.finish();
        return;
    }

    let cfg = proxy_config();
    println!(
        "tune v2: two-tier search, proxy c={} h={} w={} n={} k={}, budget {}/island, {} islands x {} epochs, seed {}",
        cfg.c, cfg.h, cfg.w, cfg.n, cfg.k, flags.budget, flags.islands, flags.epochs, flags.seed
    );
    differential_check();

    let devices = [DeviceSpec::v100(), DeviceSpec::rtx2070()];
    let mut recovery_table = Table::new(&[
        "device",
        "bound",
        "naive cyc",
        "tuned cyc",
        "hand cyc",
        "recovered %",
        "gap closed %",
        "accepted",
        "evals",
    ]);
    let mut conv2_table = Table::new(&[
        "device",
        "tier2 winner",
        "hand dev cyc",
        "tuned dev cyc",
        "beats hand",
        "stored",
    ]);
    let mut digests: Vec<(String, String)> = Vec::new();
    let mut any_beats = false;

    for dev in &devices {
        // Tier 2: emitter-parameter successive halving on the proxy shape.
        let (t2, winner_idx) = tier2_search(dev, store.as_ref(), &flags);
        let winner = &t2[winner_idx];
        println!(
            "[{}] tier2 winner: {} ({} cycles, {} evals)",
            dev.name,
            winner.params.label(),
            winner.best_cycles,
            t2.iter().map(|p| p.evals).sum::<u64>()
        );

        // Tier 1 showcase: recover the hand schedule from the naive
        // baseline with the full island lineup.
        let rec = recovery_run(dev, store.as_ref(), &flags);
        let s = rec.outcome.stats;
        recovery_table.row(vec![
            dev.name.to_string(),
            rec.bound.to_string(),
            rec.naive_cycles.to_string(),
            rec.tuned_cycles.to_string(),
            rec.hand_cycles.to_string(),
            format!("{:.1}", rec.recovered_pct()),
            format!("{:.1}", rec.gap_closed_pct()),
            s.accepted.to_string(),
            s.evals.to_string(),
        ]);
        assert!(
            rec.recovered_pct() >= 97.0,
            "{}: recovered only {:.1}% of the hand schedule ({} vs {} cycles)",
            dev.name,
            rec.recovered_pct(),
            rec.tuned_cycles,
            rec.hand_cycles
        );

        // Beat-the-hand-schedule run on the Table 2 shape, published to the
        // serve schedule store when it wins.
        let c2 = conv2_run(dev, store.as_ref(), publish.as_ref(), &flags);
        any_beats |= c2.beats_hand;
        conv2_table.row(vec![
            dev.name.to_string(),
            winner.params.label(),
            c2.hand_device_cycles.to_string(),
            c2.tuned_device_cycles.to_string(),
            if c2.beats_hand { "yes" } else { "no" }.to_string(),
            if c2.stored { "yes" } else { "no" }.to_string(),
        ]);

        digests.push((
            format!("{} recovery", dev.name),
            rec.schedule_digest.clone(),
        ));
        digests.push((format!("{} conv2@32", dev.name), c2.schedule_digest.clone()));

        report.add(
            dev.name,
            &[
                ("schema", 2u32.into()),
                ("phase", "recovery".into()),
                ("kernel", "fused_ours".into()),
                ("c", cfg.c.into()),
                ("hw", cfg.h.into()),
                ("n", cfg.n.into()),
                ("k", cfg.k.into()),
                ("budget", flags.budget.into()),
                ("islands", (flags.islands as u64).into()),
                ("epochs", flags.epochs.into()),
                ("seed", flags.seed.into()),
            ],
            &[
                ("bound", rec.bound.into()),
                ("naive_cycles", rec.naive_cycles.into()),
                ("tuned_cycles", rec.tuned_cycles.into()),
                ("hand_cycles", rec.hand_cycles.into()),
                ("recovered_pct", rec.recovered_pct().into()),
                ("gap_closed_pct", rec.gap_closed_pct().into()),
                ("winner_island", rec.outcome.winner.into()),
                ("proposed", s.proposed.into()),
                ("inapplicable", s.inapplicable.into()),
                ("illegal", s.illegal.into()),
                ("evals", s.evals.into()),
                ("accepted", s.accepted.into()),
                ("per_island", per_island_json(&rec.outcome)),
                ("best_trace", u64s_json(&rec.outcome.best_trace)),
                (
                    "accept_rates",
                    accept_rates_json(&rec.outcome, &rec.region_names),
                ),
                ("schedule_digest", rec.schedule_digest.as_str().into()),
                (
                    "trajectory",
                    trajectory_json(&rec.outcome.trajectory, &rec.region_names),
                ),
            ],
        );
        report.add(
            dev.name,
            &[
                ("schema", 2u32.into()),
                ("phase", "tier2".into()),
                ("seed", flags.seed.into()),
            ],
            &[
                ("winner", winner.params.label().into()),
                (
                    "points",
                    Json::Arr(
                        t2.iter()
                            .map(|p| {
                                obj(&[
                                    ("params", p.params.label().into()),
                                    ("hand_cycles", p.hand_cycles.into()),
                                    ("best_cycles", p.best_cycles.into()),
                                    ("evals", p.evals.into()),
                                    ("rungs", p.rungs.into()),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "pruned",
                    Json::Arr(
                        EmitterParams::enumerate()
                            .iter()
                            .filter_map(|p| {
                                p.legality().err().map(|e| {
                                    obj(&[("params", p.label().into()), ("reason", e.into())])
                                })
                            })
                            .collect(),
                    ),
                ),
            ],
        );
        let c2cfg = conv2_config();
        report.add(
            dev.name,
            &[
                ("schema", 2u32.into()),
                ("phase", "conv2_n32".into()),
                ("kernel", "fused_ours".into()),
                ("c", c2cfg.c.into()),
                ("hw", c2cfg.h.into()),
                ("n", c2cfg.n.into()),
                ("k", c2cfg.k.into()),
                ("budget", flags.budget.into()),
                ("seed", flags.seed.into()),
            ],
            &[
                ("params", c2.params_label.as_str().into()),
                ("hand_wave_cycles", c2.hand_wave_cycles.into()),
                ("tuned_wave_cycles", c2.tuned_wave_cycles.into()),
                ("hand_device_cycles", c2.hand_device_cycles.into()),
                ("tuned_device_cycles", c2.tuned_device_cycles.into()),
                ("beats_hand", c2.beats_hand.into()),
                ("evals", c2.evals.into()),
                ("schedule_digest", c2.schedule_digest.as_str().into()),
                ("stored_for_serve", c2.stored.into()),
            ],
        );
    }

    assert!(
        any_beats,
        "no device produced a tuned Conv2@32 schedule that beats the hand schedule \
         under the multi-wave device model"
    );

    if verify {
        let old = std::fs::read_to_string(&json_path)
            .unwrap_or_else(|e| panic!("--verify: cannot read {json_path}: {e}"));
        for (what, d) in &digests {
            assert!(
                old.contains(d.as_str()),
                "--verify: {what} schedule digest {d} not in committed {json_path} — \
                 the search result drifted; regenerate BENCH_tune.json"
            );
        }
        println!(
            "verify OK: {} schedule digests match {json_path}",
            digests.len()
        );
    }

    recovery_table.print();
    println!();
    conv2_table.print();
    report.finish();
}
