//! `tune` — the simulator-guided SASS schedule autotuner (ISSUE 5).
//!
//! The paper's fused-kernel schedule is hand-tuned (§5.1.4, §6); this
//! binary closes the loop the authors walked by hand. Per device it:
//!
//! 1. emits the hand-tuned fused F(2×2,3×3) kernel and its *detuned*
//!    baseline (`FusedKernel::emit_detuned`: full fixed-latency stalls, no
//!    reuse, all yields) — same instructions, naive schedule;
//! 2. profiles the baseline (`profile` + `counters`), classifies the
//!    bottleneck (`perfmodel::move_weights`) and weights the tuner's move
//!    families and per-region proposal odds from where cycles actually go
//!    (setup / prologue / main_loop / output_transform markers);
//! 3. runs `sass::tune::Tuner` — greedy per-region stall tightening, then
//!    simulated annealing over {stall, reuse, yield, barrier-reassignment,
//!    dependence-legal reorder} moves — with `gpusim::BatchTimer` as the
//!    objective (decode once, re-patch control codes per candidate) and
//!    `simcache` memoization keyed on the candidate module digest;
//! 4. reports cycle recovery: `100·hand/tuned` percent of the hand
//!    schedule's simulated performance, gated at ≥90% in full runs.
//!
//! Every candidate the objective sees has passed `sass::lint` (the tuner
//! enforces it; the objective re-checks). The tracked `BENCH_tune.json`
//! holds the per-device trajectory of accepted moves and the final schedule
//! digest; runs are deterministic for a fixed `--seed`, so the file
//! regenerates bit-identically (see EXPERIMENTS.md, "Schedule autotuner").
//!
//! Flags: `--budget N` (anneal steps, default 400), `--seed S` (default
//! 2020), `--json PATH` (default `BENCH_tune.json`), `--smoke` (V100 only,
//! budget 60, sanity asserts, no recovery gate), `--cache`/`--no-cache`
//! (simcache memoization, default on), `--cache-dir DIR`.

use bench::report::{flag_value, Report};
use bench::simcache::{timing_from_json, timing_to_json, CacheKey, Store};
use bench::Table;
use gpusim::digest::module_digest;
use gpusim::{timing, BatchTimer, DeviceSpec, Digest, Gpu, LaunchDims, TimingOptions};
use kernels::{FusedConfig, FusedKernel};
use perfmodel::{move_weights, BottleneckReport};
use sass::lint::lint;
use sass::tune::{TuneRegion, Tuner};
use sass::{Instruction, Module};

/// Tuned problem: one fused-kernel tile grid, small enough that a full
/// search (hundreds of cycle-level simulations) stays interactive but with
/// every mechanism live (yield, reuse, scoreboards, smem phases, DRAM).
fn config() -> FusedConfig {
    FusedConfig::ours(32, 8, 8, 32, 64)
}

struct DeviceRun {
    device: &'static str,
    bound: &'static str,
    naive_cycles: u64,
    hand_cycles: u64,
    tuned_cycles: u64,
    stats: sass::tune::TuneStats,
    trajectory: Vec<sass::tune::TrajPoint>,
    region_names: Vec<String>,
    schedule_digest: String,
}

impl DeviceRun {
    fn recovered_pct(&self) -> f64 {
        100.0 * self.hand_cycles as f64 / self.tuned_cycles as f64
    }
    /// Fraction of the naive→hand cycle gap the search closed.
    fn gap_closed_pct(&self) -> f64 {
        let gap = self.naive_cycles.saturating_sub(self.hand_cycles) as f64;
        if gap == 0.0 {
            return 100.0;
        }
        100.0 * self.naive_cycles.saturating_sub(self.tuned_cycles) as f64 / gap
    }
}

/// One simulation of `insts` as a module, memoized in `store` by content
/// address. Returns wave cycles.
#[allow(clippy::too_many_arguments)]
fn evaluate(
    insts: &[Instruction],
    perm: &[u32],
    batch: &mut BatchTimer,
    base: &Module,
    dev: &DeviceSpec,
    dims: LaunchDims,
    params: &[u8],
    opts: TimingOptions,
    store: Option<&Store>,
    capacity: usize,
    alloc_bytes: &[u64],
) -> Option<u64> {
    assert!(lint(insts).is_empty(), "illegal candidate reached evaluate");
    let cand = Module::new(
        &base.info.name,
        base.info.smem_bytes,
        base.info.param_bytes,
        insts.to_vec(),
    );
    let key = {
        let mut d = Digest::new();
        dev.digest_into(&mut d);
        module_digest(&cand, &mut d);
        dims.digest_into(&mut d);
        d.u64(params.len() as u64).bytes(params);
        opts.digest_into(&mut d);
        d.str("tune/v1");
        CacheKey::from_digest(&d)
    };
    if let Some(s) = store {
        if let Some(t) = s.load(&key).as_ref().and_then(timing_from_json) {
            return Some(t.wave_cycles);
        }
    }
    let mut gpu = Gpu::new(dev.clone(), capacity);
    for &b in alloc_bytes {
        gpu.alloc(b);
    }
    let t = batch
        .time(&mut gpu, &cand, perm, dims, params, opts)
        .expect("candidate timing failed");
    if let Some(s) = store {
        s.store(&key, &timing_to_json(&t));
    }
    Some(t.wave_cycles)
}

fn run_device(dev: &DeviceSpec, budget: u64, seed: u64, store: Option<&Store>) -> DeviceRun {
    let cfg = config();
    let hand = FusedKernel::emit(cfg);
    let naive = FusedKernel::emit_detuned(cfg);
    let (c, h, w, n, k) = (cfg.c, cfg.h, cfg.w, cfg.n, cfg.k);
    let alloc_bytes = [
        (c * h * w * n) as u64 * 4,
        (c * 16 * k) as u64 * 4,
        (k * h * w * n) as u64 * 4,
    ];
    let capacity = 1 << 22;
    let dims = naive.launch_dims();
    let params = {
        // Fixed addresses: allocation order is deterministic, so build the
        // parameter block once against a scratch GPU.
        let mut gpu = Gpu::new(dev.clone(), capacity);
        let a = gpu.alloc(alloc_bytes[0]);
        let b = gpu.alloc(alloc_bytes[1]);
        let o = gpu.alloc(alloc_bytes[2]);
        naive.params(a, b, o)
    };
    let opts = TimingOptions {
        region: Some(naive.region),
        ..Default::default()
    };

    let mut batch = BatchTimer::new(&naive.module);
    let base = naive.module.clone();
    let mut objective = |insts: &[Instruction], perm: &[u32]| {
        evaluate(
            insts,
            perm,
            &mut batch,
            &base,
            dev,
            dims,
            params.as_slice(),
            opts,
            store,
            capacity,
            &alloc_bytes,
        )
    };

    // The hand schedule is the same instruction sequence with better control
    // codes, so it evaluates through the same batch table (identity map).
    let ident: Vec<u32> = (0..hand.module.insts.len() as u32).collect();
    let hand_cycles = objective(&hand.module.insts, &ident).unwrap();

    let regions: Vec<TuneRegion> = naive
        .regions
        .iter()
        .map(|r| TuneRegion {
            name: r.name.clone(),
            start: r.start,
            end: r.end,
        })
        .collect();
    let region_names: Vec<String> = regions.iter().map(|r| r.name.clone()).collect();
    let mut tuner = Tuner::new(naive.module.insts.clone(), regions, seed);
    let naive_cycles = tuner.prime(&mut objective);

    // Profile the baseline once (cold, uncached — profiling options change
    // the digest anyway) to aim the search: per-region proposal odds from
    // the stall/issue cycle split, move-family weights from the classified
    // bottleneck.
    let bound = {
        let mut gpu = Gpu::new(dev.clone(), capacity);
        for &b in &alloc_bytes {
            gpu.alloc(b);
        }
        let popts = TimingOptions {
            profile: true,
            counters: true,
            ..opts
        };
        let mut t = timing::time_kernel(&mut gpu, &naive.module, dims, &params, popts)
            .expect("profile run failed");
        if let Some(prof) = t.profile.as_mut() {
            prof.regions = naive.regions.clone();
            let totals = prof.region_totals();
            tuner.region_weights = tuner
                .regions()
                .iter()
                .map(|r| {
                    totals
                        .iter()
                        .find(|(name, _, _)| name == &r.name)
                        .map_or(1.0, |&(_, issue, stall)| (issue + stall) as f64 + 1.0)
                })
                .collect();
        }
        let report = BottleneckReport::classify(&t);
        tuner.weights = move_weights(&report);
        report.bound.name()
    };

    tuner.greedy_tighten(&mut objective);
    tuner.start_anneal(budget);
    for _ in 0..budget {
        tuner.anneal_step(&mut objective);
    }

    let best = Module::new(
        &base.info.name,
        base.info.smem_bytes,
        base.info.param_bytes,
        tuner.best_insts.clone(),
    );
    let schedule_digest = {
        let mut d = Digest::new();
        module_digest(&best, &mut d);
        d.hex()
    };
    DeviceRun {
        device: dev.name,
        bound,
        naive_cycles,
        hand_cycles,
        tuned_cycles: tuner.best_cost,
        stats: tuner.stats,
        trajectory: tuner.trajectory.clone(),
        region_names,
        schedule_digest,
    }
}

fn trajectory_json(run: &DeviceRun) -> bench::json::Json {
    bench::json::Json::Arr(
        run.trajectory
            .iter()
            .map(|p| {
                bench::json::obj(&[
                    ("step", p.step.into()),
                    ("move", p.kind.name().into()),
                    ("pc", p.pc.into()),
                    (
                        "region",
                        run.region_names
                            .get(p.region)
                            .map_or("?", |s| s.as_str())
                            .into(),
                    ),
                    ("cycles", p.cycles.into()),
                ])
            })
            .collect(),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let budget: u64 = if smoke {
        60
    } else {
        flag_value(&args, "--budget").map_or(400, |v| v.parse().expect("--budget N"))
    };
    let seed: u64 = flag_value(&args, "--seed").map_or(2020, |v| v.parse().expect("--seed S"));
    let json_path = flag_value(&args, "--json").unwrap_or_else(|| "BENCH_tune.json".into());
    let no_cache = args.iter().any(|a| a == "--no-cache");
    let store = if no_cache {
        None
    } else {
        Some(Store::new(
            flag_value(&args, "--cache-dir").map_or_else(Store::default_dir, Into::into),
        ))
    };

    let cfg = config();
    println!(
        "tune: fused F(2x2,3x3) schedule search, c={} h={} w={} n={} k={}, budget {budget}, seed {seed}",
        cfg.c, cfg.h, cfg.w, cfg.n, cfg.k
    );

    let devices: &[DeviceSpec] = if smoke {
        &[DeviceSpec::v100()]
    } else {
        &[DeviceSpec::v100(), DeviceSpec::rtx2070()]
    };

    let mut report = Report::to_path("tune", Some(json_path));
    let mut t = Table::new(&[
        "device",
        "bound",
        "naive cyc",
        "tuned cyc",
        "hand cyc",
        "recovered %",
        "gap closed %",
        "accepted",
        "evals",
    ]);
    for dev in devices {
        let run = run_device(dev, budget, seed, store.as_ref());
        let s = run.stats;
        t.row(vec![
            run.device.to_string(),
            run.bound.to_string(),
            run.naive_cycles.to_string(),
            run.tuned_cycles.to_string(),
            run.hand_cycles.to_string(),
            format!("{:.1}", run.recovered_pct()),
            format!("{:.1}", run.gap_closed_pct()),
            s.accepted.to_string(),
            s.evals.to_string(),
        ]);

        if smoke {
            assert!(s.accepted >= 1, "smoke: no accepted move");
            assert!(
                run.tuned_cycles < run.naive_cycles,
                "smoke: no improving move ({} -> {})",
                run.naive_cycles,
                run.tuned_cycles
            );
            // Every proposal is accounted for: statically rejected, rejected
            // by the lint gate, or evaluated (legality asserted in
            // `evaluate` for each one).
            assert_eq!(s.proposed, budget);
            assert!(s.evals >= s.accepted);
        } else {
            assert!(
                run.recovered_pct() >= 90.0,
                "{}: tuner recovered only {:.1}% of the hand schedule ({} vs {} cycles)",
                run.device,
                run.recovered_pct(),
                run.tuned_cycles,
                run.hand_cycles
            );
        }

        report.add(
            run.device,
            &[
                ("kernel", "fused_ours".into()),
                ("c", cfg.c.into()),
                ("hw", cfg.h.into()),
                ("n", cfg.n.into()),
                ("k", cfg.k.into()),
                ("budget", budget.into()),
                ("seed", seed.into()),
            ],
            &[
                ("bound", run.bound.into()),
                ("naive_cycles", run.naive_cycles.into()),
                ("tuned_cycles", run.tuned_cycles.into()),
                ("hand_cycles", run.hand_cycles.into()),
                ("recovered_pct", run.recovered_pct().into()),
                ("gap_closed_pct", run.gap_closed_pct().into()),
                ("proposed", s.proposed.into()),
                ("inapplicable", s.inapplicable.into()),
                ("illegal", s.illegal.into()),
                ("evals", s.evals.into()),
                ("accepted", s.accepted.into()),
                ("schedule_digest", run.schedule_digest.as_str().into()),
                ("trajectory", trajectory_json(&run)),
            ],
        );
    }
    t.print();
    if smoke {
        println!("\nsmoke OK: accepted improving moves, all candidates legal");
    }
    report.finish();
}
