//! `servemon` — replay a `serve --events` flight-recorder log into a
//! terminal operations summary.
//!
//! ```text
//! servemon --log PATH [--window-ms W] [--top N] [--slo-target F] [--smoke]
//! ```
//!
//! The log is the JSON-lines stream the `serve` binary writes with
//! `--events`: one object per lifecycle event, context-tagged with `device`
//! and `phase`. `servemon` groups lines by `(device, phase)` in first-seen
//! order and prints, per group:
//!
//! * a one-line headline (requests / completed / misses / batches and the
//!   nearest-rank p50 / p99 / p99.9 latency recomputed from the raw
//!   per-request completions — no histogram approximation);
//! * the SLO **burn-rate table**: fixed `--window-ms` windows over
//!   completion time, each with its miss count split by attributed cause
//!   (queueing vs service vs plan-build) and the burn rate against
//!   `--slo-target` (default 0.999: miss fraction over the window divided
//!   by the 0.1% error budget — above 1.0 the budget is burning);
//! * the top `--top` **starved classes** ranked by p99 arrival-to-dispatch
//!   wait, with their worst observed queue-depth gauge reading;
//! * the **drift report**: every mix-drift event (observed per-class
//!   arrival-rate EWMA leaving the band around the plan's probe-time
//!   assumption), or a one-line all-clear.
//!
//! `--smoke` additionally asserts the stream's internal consistency —
//! timestamps sorted, every arrival enqueued, every completion preceded by
//! its batch dispatch, gauge `queued` equal to the sum of per-class depths
//! — and prints `[servemon] smoke OK`; CI replays the smoke-run log through
//! this to keep the writer and the reader honest against each other.

use bench::json::{parse, Json};
use bench::report::flag_value;
use bench::Table;
use std::collections::{HashMap, HashSet};

struct Args {
    log: String,
    window_ns: u64,
    top: usize,
    slo_target: f64,
    smoke: bool,
}

fn parse_args() -> Result<Args, String> {
    let args: Vec<String> = std::env::args().collect();
    let f = |flag: &str, dflt: f64| -> Result<f64, String> {
        flag_value(&args, flag).map_or(Ok(dflt), |v| v.parse().map_err(|e| format!("{flag}: {e}")))
    };
    Ok(Args {
        log: flag_value(&args, "--log").ok_or("--log PATH is required")?,
        window_ns: (f("--window-ms", 100.0)? * 1e6) as u64,
        top: f("--top", 5.0)? as usize,
        slo_target: f("--slo-target", 0.999)?,
        smoke: args.iter().any(|a| a == "--smoke"),
    })
}

/// One parsed event line (only the fields the summary needs).
struct Line {
    t: u64,
    kind: String,
    v: Json,
}

/// All events of one `(device, phase)` context, in log order.
struct Group {
    device: String,
    phase: String,
    lines: Vec<Line>,
}

fn num(v: &Json, key: &str) -> f64 {
    v.get(key).and_then(Json::as_f64).unwrap_or(0.0)
}

fn nat(v: &Json, key: &str) -> u64 {
    num(v, key) as u64
}

fn text<'j>(v: &'j Json, key: &str) -> &'j str {
    v.get(key).and_then(Json::as_str).unwrap_or("?")
}

/// Nearest-rank percentile over an ascending slice.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

fn us(ns: u64) -> f64 {
    ns as f64 / 1e3
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: servemon --log PATH [--window-ms W] [--top N] [--slo-target F] [--smoke]"
            );
            std::process::exit(2);
        }
    };
    assert!(
        args.slo_target > 0.0 && args.slo_target < 1.0,
        "--slo-target must be in (0, 1)"
    );
    let raw = std::fs::read_to_string(&args.log)
        .unwrap_or_else(|e| panic!("failed to read --log {}: {e}", args.log));

    let mut groups: Vec<Group> = Vec::new();
    for (lineno, line) in raw.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = parse(line).unwrap_or_else(|e| panic!("line {}: bad JSON: {e}", lineno + 1));
        let (device, phase) = (
            text(&v, "device").to_string(),
            text(&v, "phase").to_string(),
        );
        let g = match groups
            .iter_mut()
            .find(|g| g.device == device && g.phase == phase)
        {
            Some(g) => g,
            None => {
                groups.push(Group {
                    device,
                    phase,
                    lines: Vec::new(),
                });
                groups.last_mut().unwrap()
            }
        };
        g.lines.push(Line {
            t: nat(&v, "t"),
            kind: text(&v, "kind").to_string(),
            v,
        });
    }
    println!(
        "replayed {} events, {} contexts from {}",
        groups.iter().map(|g| g.lines.len()).sum::<usize>(),
        groups.len(),
        args.log
    );

    for g in &groups {
        summarize(g, &args);
    }
    if args.smoke {
        assert!(
            !groups.is_empty(),
            "smoke log must hold at least one context"
        );
        eprintln!("[servemon] smoke OK");
    }
}

fn summarize(g: &Group, args: &Args) {
    let mut arrivals = 0u64;
    let mut enqueued: HashSet<u64> = HashSet::new();
    let mut dispatched_batches: HashSet<u64> = HashSet::new();
    let mut batches = 0u64;
    let mut latencies: Vec<u64> = Vec::new();
    // Per class: completion count, waits, misses.
    let mut class_waits: HashMap<String, Vec<u64>> = HashMap::new();
    let mut worst_depth: HashMap<usize, u32> = HashMap::new();
    let mut class_order: Vec<String> = Vec::new();
    // (complete_t, miss, cause)
    let mut completions: Vec<(u64, bool, String)> = Vec::new();
    let mut drift: Vec<&Json> = Vec::new();
    let mut prev_t = 0u64;

    for l in &g.lines {
        if args.smoke {
            assert!(l.t >= prev_t, "{}/{}: timestamps sorted", g.device, g.phase);
        }
        prev_t = l.t;
        match l.kind.as_str() {
            "arrival" => arrivals += 1,
            "enqueue" => {
                enqueued.insert(nat(&l.v, "id"));
            }
            "dispatch" => {
                batches += 1;
                dispatched_batches.insert(nat(&l.v, "batch"));
            }
            "complete" => {
                let class = text(&l.v, "class").to_string();
                if !class_order.contains(&class) {
                    class_order.push(class.clone());
                }
                latencies.push(nat(&l.v, "latency_ns"));
                class_waits
                    .entry(class)
                    .or_default()
                    .push(nat(&l.v, "wait_ns"));
                let miss = l.v.get("miss") == Some(&Json::Bool(true));
                completions.push((l.t, miss, text(&l.v, "cause").to_string()));
                if args.smoke {
                    assert!(
                        enqueued.contains(&nat(&l.v, "id")),
                        "{}/{}: completion without enqueue",
                        g.device,
                        g.phase
                    );
                    assert!(
                        dispatched_batches.contains(&nat(&l.v, "batch")),
                        "{}/{}: completion without dispatch",
                        g.device,
                        g.phase
                    );
                }
            }
            "gauge" => {
                let depths = l.v.get("depths").and_then(Json::as_arr).unwrap_or(&[]);
                for (c, d) in depths.iter().enumerate() {
                    let d = d.as_f64().unwrap_or(0.0) as u32;
                    let w = worst_depth.entry(c).or_insert(0);
                    *w = (*w).max(d);
                }
                if args.smoke {
                    let sum: f64 = depths.iter().filter_map(Json::as_f64).sum();
                    assert_eq!(
                        sum as u64,
                        nat(&l.v, "queued"),
                        "{}/{}: gauge queued reconciles",
                        g.device,
                        g.phase
                    );
                }
            }
            "drift" => drift.push(&l.v),
            _ => {}
        }
    }
    if args.smoke {
        assert_eq!(
            arrivals,
            enqueued.len() as u64,
            "{}/{}: every arrival enqueued",
            g.device,
            g.phase
        );
    }

    latencies.sort_unstable();
    let completed = latencies.len() as u64;
    let missed = completions.iter().filter(|(_, m, _)| *m).count() as u64;
    println!("\n== {} ({}) ==", g.device, g.phase);
    println!(
        "requests {}  completed {}  missed {} ({:.2}%)  batches {}  p50 {:.1} us  p99 {:.1} us  p99.9 {:.1} us",
        arrivals,
        completed,
        missed,
        if completed > 0 {
            100.0 * missed as f64 / completed as f64
        } else {
            0.0
        },
        batches,
        us(percentile(&latencies, 50.0)),
        us(percentile(&latencies, 99.0)),
        us(percentile(&latencies, 99.9)),
    );

    // Burn-rate table over fixed windows of completion time.
    let budget = 1.0 - args.slo_target;
    let mut windows: Vec<(u64, u64, [u64; 3])> = Vec::new(); // (completed, missed, causes)
    for &(t, miss, ref cause) in &completions {
        let w = (t / args.window_ns) as usize;
        if windows.len() <= w {
            windows.resize(w + 1, (0, 0, [0; 3]));
        }
        windows[w].0 += 1;
        if miss {
            windows[w].1 += 1;
            let ci = match cause.as_str() {
                "queueing" => 0,
                "service" => 1,
                _ => 2,
            };
            windows[w].2[ci] += 1;
        }
    }
    println!(
        "burn rate (window {:.0} ms, objective {:.3}%):",
        ms(args.window_ns),
        100.0 * args.slo_target
    );
    let mut t = Table::new(&[
        "window ms",
        "completed",
        "missed",
        "burn",
        "queueing",
        "service",
        "plan_build",
    ]);
    for (w, &(c, m, causes)) in windows.iter().enumerate() {
        let burn = if c > 0 {
            (m as f64 / c as f64) / budget
        } else {
            0.0
        };
        t.row(vec![
            format!("{:.0}", ms(w as u64 * args.window_ns)),
            c.to_string(),
            m.to_string(),
            format!("{burn:.2}"),
            causes[0].to_string(),
            causes[1].to_string(),
            causes[2].to_string(),
        ]);
    }
    t.print();

    // Starvation: classes ranked by p99 arrival-to-dispatch wait.
    let mut ranked: Vec<(&String, u64, u64, usize)> = class_order
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let mut waits = class_waits[name].clone();
            waits.sort_unstable();
            let p99 = percentile(&waits, 99.0);
            let max = waits.last().copied().unwrap_or(0);
            (name, p99, max, i)
        })
        .collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    println!(
        "top {} starved classes (p99 wait):",
        args.top.min(ranked.len())
    );
    let mut t = Table::new(&[
        "class",
        "completed",
        "p99 wait us",
        "max wait us",
        "peak depth",
    ]);
    for &(name, p99, max, i) in ranked.iter().take(args.top) {
        t.row(vec![
            name.clone(),
            class_waits[name].len().to_string(),
            format!("{:.1}", us(p99)),
            format!("{:.1}", us(max)),
            worst_depth.get(&i).copied().unwrap_or(0).to_string(),
        ]);
    }
    t.print();

    if drift.is_empty() {
        println!("drift: none (observed mix stayed within the plan's assumed band)");
    } else {
        println!("drift events:");
        for d in &drift {
            println!(
                "  t {:.1} ms  {}  observed {:.0} rps vs assumed {:.0} rps (ratio {:.2}) {}",
                ms(nat(d, "t")),
                text(d, "class"),
                num(d, "observed_rps"),
                num(d, "assumed_rps"),
                num(d, "ratio"),
                if d.get("drifted") == Some(&Json::Bool(true)) {
                    "LEFT BAND"
                } else {
                    "returned"
                }
            );
        }
    }
}
