//! Figure 9: main-loop throughput under different STS scheduling strategies
//! (RTX 2070). Paper: STS6 is ~2% over STS2.

use bench::report::Report;
use bench::{configs, conv_for, label, mainloop_sweep, Table};
use gpusim::DeviceSpec;
use kernels::StsStrategy;

fn main() {
    println!("Figure 9: main-loop TFLOPS by STS interleave (simulated RTX 2070)");
    println!("Paper: STS6 ~2% over STS2\n");
    let dev = DeviceSpec::rtx2070();
    let strategies = [
        ("sts2", StsStrategy::Sts2),
        ("sts4", StsStrategy::Sts4),
        ("sts6", StsStrategy::Sts6),
    ];
    let mut points = Vec::new();
    for (layer, n) in configs() {
        for (_, strat) in strategies {
            let conv = conv_for(&layer, n, &dev);
            let mut cfg = conv.ours_config();
            cfg.sts = strat;
            points.push((conv, cfg));
        }
    }
    let mut tflops_it = mainloop_sweep("fig9", points).into_iter();

    let mut report = Report::from_args("fig9");
    let mut t = Table::new(&["layer", "STS2", "STS4", "STS6"]);
    let mut sums = [0.0f64; 3];
    for (layer, n) in configs() {
        let mut row = vec![label(&layer, n)];
        for (i, (name, _)) in strategies.iter().enumerate() {
            let tflops = tflops_it.next().unwrap();
            sums[i] += tflops;
            row.push(format!("{tflops:.2}"));
            report.add(
                dev.name,
                &[
                    ("layer", layer.name.into()),
                    ("n", n.into()),
                    ("sts", (*name).into()),
                ],
                &[("mainloop_tflops", tflops.into())],
            );
        }
        t.row(row);
    }
    t.print();
    println!("\nSTS6/STS2 = {:.3}x", sums[2] / sums[0]);

    if bench::metrics::wanted() {
        let mut points = Vec::new();
        let mut cfgs = Vec::new();
        for (layer, n) in configs() {
            for (name, strat) in strategies {
                let conv = conv_for(&layer, n, &dev);
                let mut cfg = conv.ours_config();
                cfg.sts = strat;
                points.push((conv, cfg));
                cfgs.push((layer.name, n, name));
            }
        }
        bench::metrics::add_mainloop_metrics_records(&mut report, "fig9-metrics", points, |i| {
            let (layer, n, strat) = cfgs[i];
            (
                dev.name.to_string(),
                vec![
                    ("layer", layer.into()),
                    ("n", n.into()),
                    ("sts", strat.into()),
                ],
            )
        });
    }
    report.finish();
}
