//! Figure 8: main-loop throughput under different LDG scheduling strategies
//! (RTX 2070). Paper: LDG8 (one LDG per 8 FFMAs) beats cuDNN's LDG2 by up
//! to 1.24×.

use bench::report::Report;
use bench::{configs, label, Table};
use gpusim::DeviceSpec;
use kernels::LdgStrategy;
use wino_core::Conv;

fn main() {
    println!("Figure 8: main-loop TFLOPS by LDG interleave (simulated RTX 2070)");
    println!("Paper: LDG8 up to 1.24x over LDG2\n");
    let dev = DeviceSpec::rtx2070();
    let mut report = Report::from_args("fig8");
    let mut t = Table::new(&["layer", "LDG2", "LDG4", "LDG8"]);
    let mut sums = [0.0f64; 3];
    for (layer, n) in configs() {
        let conv = Conv::new(layer.problem(n), dev.clone());
        let mut row = vec![label(&layer, n)];
        for (i, (name, strat)) in [
            ("ldg2", LdgStrategy::Ldg2),
            ("ldg4", LdgStrategy::Ldg4),
            ("ldg8", LdgStrategy::Ldg8),
        ]
        .iter()
        .enumerate()
        {
            let mut cfg = conv.ours_config();
            cfg.ldg = *strat;
            let (_, tflops) = conv.time_fused_mainloop(cfg);
            sums[i] += tflops;
            row.push(format!("{tflops:.2}"));
            report.add(
                dev.name,
                &[
                    ("layer", layer.name.into()),
                    ("n", n.into()),
                    ("ldg", (*name).into()),
                ],
                &[("mainloop_tflops", tflops.into())],
            );
        }
        t.row(row);
    }
    t.print();
    println!("\nLDG8/LDG2 = {:.3}x", sums[2] / sums[0]);
    report.finish();
}
