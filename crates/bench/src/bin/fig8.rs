//! Figure 8: main-loop throughput under different LDG scheduling strategies
//! (RTX 2070). Paper: LDG8 (one LDG per 8 FFMAs) beats cuDNN's LDG2 by up
//! to 1.24×.

use bench::report::Report;
use bench::{configs, conv_for, label, mainloop_sweep, Table};
use gpusim::DeviceSpec;
use kernels::LdgStrategy;

fn main() {
    println!("Figure 8: main-loop TFLOPS by LDG interleave (simulated RTX 2070)");
    println!("Paper: LDG8 up to 1.24x over LDG2\n");
    let dev = DeviceSpec::rtx2070();
    let strategies = [
        ("ldg2", LdgStrategy::Ldg2),
        ("ldg4", LdgStrategy::Ldg4),
        ("ldg8", LdgStrategy::Ldg8),
    ];
    let mut points = Vec::new();
    for (layer, n) in configs() {
        for (_, strat) in strategies {
            let conv = conv_for(&layer, n, &dev);
            let mut cfg = conv.ours_config();
            cfg.ldg = strat;
            points.push((conv, cfg));
        }
    }
    let mut tflops_it = mainloop_sweep("fig8", points).into_iter();

    let mut report = Report::from_args("fig8");
    let mut t = Table::new(&["layer", "LDG2", "LDG4", "LDG8"]);
    let mut sums = [0.0f64; 3];
    for (layer, n) in configs() {
        let mut row = vec![label(&layer, n)];
        for (i, (name, _)) in strategies.iter().enumerate() {
            let tflops = tflops_it.next().unwrap();
            sums[i] += tflops;
            row.push(format!("{tflops:.2}"));
            report.add(
                dev.name,
                &[
                    ("layer", layer.name.into()),
                    ("n", n.into()),
                    ("ldg", (*name).into()),
                ],
                &[("mainloop_tflops", tflops.into())],
            );
        }
        t.row(row);
    }
    t.print();
    println!("\nLDG8/LDG2 = {:.3}x", sums[2] / sums[0]);

    if bench::metrics::wanted() {
        let mut points = Vec::new();
        let mut cfgs = Vec::new();
        for (layer, n) in configs() {
            for (name, strat) in strategies {
                let conv = conv_for(&layer, n, &dev);
                let mut cfg = conv.ours_config();
                cfg.ldg = strat;
                points.push((conv, cfg));
                cfgs.push((layer.name, n, name));
            }
        }
        bench::metrics::add_mainloop_metrics_records(&mut report, "fig8-metrics", points, |i| {
            let (layer, n, strat) = cfgs[i];
            (
                dev.name.to_string(),
                vec![
                    ("layer", layer.into()),
                    ("n", n.into()),
                    ("ldg", strat.into()),
                ],
            )
        });
    }
    report.finish();
}
