//! Figure 7: main-loop throughput under different yield strategies
//! (RTX 2070). Paper: "Natural" (never clearing the yield flag) achieves
//! 1.09× over NVCC's every-8 and 1.11× over cuDNN's every-7 heuristic.

use bench::report::Report;
use bench::{configs, label, Table};
use gpusim::DeviceSpec;
use kernels::YieldStrategy;
use wino_core::Conv;

fn main() {
    println!("Figure 7: main-loop TFLOPS by yield strategy (simulated RTX 2070)");
    println!("Paper: Natural ~1.09-1.11x over NVCC/cuDNN heuristics\n");
    let dev = DeviceSpec::rtx2070();
    let mut report = Report::from_args("fig7");
    let mut t = Table::new(&["layer", "cuDNN", "NVCC", "Natural"]);
    let mut sums = [0.0f64; 3];
    for (layer, n) in configs() {
        let conv = Conv::new(layer.problem(n), dev.clone());
        let mut row = vec![label(&layer, n)];
        for (i, (name, strat)) in [
            ("cudnn", YieldStrategy::Cudnn),
            ("nvcc", YieldStrategy::Nvcc),
            ("natural", YieldStrategy::Natural),
        ]
        .iter()
        .enumerate()
        {
            let mut cfg = conv.ours_config();
            cfg.yield_strategy = *strat;
            let (_, tflops) = conv.time_fused_mainloop(cfg);
            sums[i] += tflops;
            row.push(format!("{tflops:.2}"));
            report.add(
                dev.name,
                &[
                    ("layer", layer.name.into()),
                    ("n", n.into()),
                    ("yield", (*name).into()),
                ],
                &[("mainloop_tflops", tflops.into())],
            );
        }
        t.row(row);
    }
    t.print();
    println!(
        "\nNatural/cuDNN = {:.3}x, Natural/NVCC = {:.3}x",
        sums[2] / sums[0],
        sums[2] / sums[1]
    );
    report.finish();
}
