//! Figure 7: main-loop throughput under different yield strategies
//! (RTX 2070). Paper: "Natural" (never clearing the yield flag) achieves
//! 1.09× over NVCC's every-8 and 1.11× over cuDNN's every-7 heuristic.

use bench::report::Report;
use bench::{configs, conv_for, label, mainloop_sweep, Table};
use gpusim::DeviceSpec;
use kernels::YieldStrategy;

fn main() {
    println!("Figure 7: main-loop TFLOPS by yield strategy (simulated RTX 2070)");
    println!("Paper: Natural ~1.09-1.11x over NVCC/cuDNN heuristics\n");
    let dev = DeviceSpec::rtx2070();
    let strategies = [
        ("cudnn", YieldStrategy::Cudnn),
        ("nvcc", YieldStrategy::Nvcc),
        ("natural", YieldStrategy::Natural),
    ];
    let mut points = Vec::new();
    for (layer, n) in configs() {
        for (_, strat) in strategies {
            let conv = conv_for(&layer, n, &dev);
            let mut cfg = conv.ours_config();
            cfg.yield_strategy = strat;
            points.push((conv, cfg));
        }
    }
    let mut tflops_it = mainloop_sweep("fig7", points).into_iter();

    let mut report = Report::from_args("fig7");
    let mut t = Table::new(&["layer", "cuDNN", "NVCC", "Natural"]);
    let mut sums = [0.0f64; 3];
    for (layer, n) in configs() {
        let mut row = vec![label(&layer, n)];
        for (i, (name, _)) in strategies.iter().enumerate() {
            let tflops = tflops_it.next().unwrap();
            sums[i] += tflops;
            row.push(format!("{tflops:.2}"));
            report.add(
                dev.name,
                &[
                    ("layer", layer.name.into()),
                    ("n", n.into()),
                    ("yield", (*name).into()),
                ],
                &[("mainloop_tflops", tflops.into())],
            );
        }
        t.row(row);
    }
    t.print();
    println!(
        "\nNatural/cuDNN = {:.3}x, Natural/NVCC = {:.3}x",
        sums[2] / sums[0],
        sums[2] / sums[1]
    );

    if bench::metrics::wanted() {
        let mut points = Vec::new();
        let mut cfgs = Vec::new();
        for (layer, n) in configs() {
            for (name, strat) in strategies {
                let conv = conv_for(&layer, n, &dev);
                let mut cfg = conv.ours_config();
                cfg.yield_strategy = strat;
                points.push((conv, cfg));
                cfgs.push((layer.name, n, name));
            }
        }
        bench::metrics::add_mainloop_metrics_records(&mut report, "fig7-metrics", points, |i| {
            let (layer, n, strat) = cfgs[i];
            (
                dev.name.to_string(),
                vec![
                    ("layer", layer.into()),
                    ("n", n.into()),
                    ("yield", strat.into()),
                ],
            )
        });
    }
    report.finish();
}
