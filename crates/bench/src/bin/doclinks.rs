//! `doclinks` — CI gate for relative links in the Markdown docs.
//!
//! Scans `README.md`, `EXPERIMENTS.md` and every `*.md` under `docs/`
//! (recursively) for inline links and images, and fails — listing every
//! offender — when a relative link points at a file that does not exist or
//! at a heading anchor that no heading in the target file produces.
//! Anchors are matched against GitHub's slug rules (lowercase, punctuation
//! stripped, spaces to hyphens, `-1`/`-2`/… suffixes for duplicates).
//!
//! What is deliberately *not* checked: absolute URLs (`http://`, `https://`,
//! `mailto:` — this tool must work offline), autolinks, and anything inside
//! fenced code blocks (```` ``` ````), where bracketed text is code, not a
//! link.
//!
//! Flags: `--root DIR` (repo root, default `.`), `--verbose` (print every
//! checked link). Exit code 0 = all links resolve, 1 = at least one broken.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

/// GitHub-style slugs for every heading in a Markdown file, in order.
/// Duplicate headings get `-1`, `-2`, … suffixes, like GitHub renders them.
fn heading_slugs(text: &str) -> Vec<String> {
    let mut counts: HashMap<String, u32> = HashMap::new();
    let mut slugs = Vec::new();
    let mut in_fence = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence || !line.starts_with('#') {
            continue;
        }
        let title = line.trim_start_matches('#').trim();
        let slug = slugify(title);
        let n = counts.entry(slug.clone()).or_insert(0);
        slugs.push(if *n == 0 { slug } else { format!("{slug}-{n}") });
        *n += 1;
    }
    slugs
}

/// GitHub's anchor algorithm, close enough for our headings: drop inline
/// markup characters, lowercase, keep alphanumerics/hyphens/underscores,
/// map spaces to hyphens, drop everything else.
fn slugify(title: &str) -> String {
    let mut out = String::new();
    for c in title.chars() {
        match c {
            '`' | '*' | '[' | ']' | '(' | ')' => {}
            ' ' => out.push('-'),
            '-' | '_' => out.push(c),
            c if c.is_alphanumeric() => out.extend(c.to_lowercase()),
            _ => {}
        }
    }
    out
}

/// Extract inline `[text](target)` / `![alt](target)` targets outside
/// fenced code blocks and inline code spans.
fn link_targets(text: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut in_fence = false;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        // Strip inline code spans so `[i](j)` inside backticks is ignored.
        let mut clean = String::with_capacity(line.len());
        let mut in_code = false;
        for c in line.chars() {
            if c == '`' {
                in_code = !in_code;
            } else if !in_code {
                clean.push(c);
            }
        }
        let bytes = clean.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            if bytes[i] == b']' && i + 1 < bytes.len() && bytes[i + 1] == b'(' {
                let start = i + 2;
                if let Some(off) = clean[start..].find(')') {
                    let target = clean[start..start + off].trim();
                    // "](url "title")" form: keep the url part only.
                    let target = target.split_whitespace().next().unwrap_or("");
                    if !target.is_empty() && !is_external(target) {
                        out.push((lineno + 1, target.to_string()));
                    }
                    i = start + off;
                }
            }
            i += 1;
        }
    }
    out
}

fn is_external(target: &str) -> bool {
    target.starts_with("http://") || target.starts_with("https://") || target.starts_with("mailto:")
}

fn collect_md(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            collect_md(&p, out);
        } else if p.extension().is_some_and(|e| e == "md") {
            out.push(p);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let root = bench::report::flag_value(&args, "--root").unwrap_or_else(|| ".".to_string());
    let verbose = args.iter().any(|a| a == "--verbose");
    let root = PathBuf::from(root);

    let mut files = Vec::new();
    for name in ["README.md", "EXPERIMENTS.md"] {
        let p = root.join(name);
        assert!(
            p.is_file(),
            "{} not found under --root {}",
            name,
            root.display()
        );
        files.push(p);
    }
    collect_md(&root.join("docs"), &mut files);

    let mut slug_cache: HashMap<PathBuf, Vec<String>> = HashMap::new();
    let mut checked = 0usize;
    let mut broken: Vec<String> = Vec::new();

    for file in &files {
        let text = std::fs::read_to_string(file).expect("read markdown file");
        let dir = file.parent().unwrap();
        for (lineno, target) in link_targets(&text) {
            checked += 1;
            let (path_part, anchor) = match target.split_once('#') {
                Some((p, a)) => (p, Some(a.to_string())),
                None => (target.as_str(), None),
            };
            // Bare "#anchor" refers to the current file.
            let resolved = if path_part.is_empty() {
                file.clone()
            } else {
                dir.join(path_part)
            };
            if verbose {
                eprintln!("[doclinks] {}:{} -> {}", file.display(), lineno, target);
            }
            if !resolved.exists() {
                broken.push(format!(
                    "{}:{}: broken link `{}` (no such file {})",
                    file.display(),
                    lineno,
                    target,
                    resolved.display()
                ));
                continue;
            }
            if let Some(anchor) = anchor {
                if resolved.extension().is_none_or(|e| e != "md") {
                    continue; // anchors only checked in markdown targets
                }
                let slugs = slug_cache.entry(resolved.clone()).or_insert_with(|| {
                    heading_slugs(&std::fs::read_to_string(&resolved).expect("read link target"))
                });
                if !slugs.contains(&anchor) {
                    broken.push(format!(
                        "{}:{}: broken anchor `{}` (no heading slug `{}` in {})",
                        file.display(),
                        lineno,
                        target,
                        anchor,
                        resolved.display()
                    ));
                }
            }
        }
    }

    eprintln!(
        "[doclinks] {} files, {} relative links checked, {} broken",
        files.len(),
        checked,
        broken.len()
    );
    if !broken.is_empty() {
        for b in &broken {
            eprintln!("[doclinks] {b}");
        }
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slugs_match_github_rules() {
        let text =
            "# Hello, World!\n## `code` and *stars*\n## Dup\n## Dup\n```\n# not a heading\n```\n";
        assert_eq!(
            heading_slugs(text),
            vec!["hello-world", "code-and-stars", "dup", "dup-1"]
        );
    }

    #[test]
    fn links_skip_code_and_urls() {
        let text = "a [x](y.md) b `[c](d.md)` \n```\n[e](f.md)\n```\n[g](https://h) [i](j.md#k)\n";
        let t: Vec<String> = link_targets(text).into_iter().map(|(_, s)| s).collect();
        assert_eq!(t, vec!["y.md", "j.md#k"]);
    }
}
