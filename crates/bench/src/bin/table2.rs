//! Table 2: speedup of cuDNN's Winograd convolution over cuDNN's GEMM-based
//! convolution on V100 — the motivation measurement (§2.2).
//!
//! Paper values: 0.81×–1.67×, average 1.4× — far below the theoretical
//! 2.25× multiplication reduction.

use bench::report::Report;
use bench::{conv_for, time_sweep, x, Table};
use gpusim::DeviceSpec;
use wino_core::resnet::{BATCH_SIZES, RESNET_LAYERS};
use wino_core::Algo;

fn main() {
    println!("Table 2: cuDNN-like Winograd vs GEMM-based convolution (simulated V100)");
    println!("Paper: 0.81x-1.67x, average 1.4x\n");
    let dev = DeviceSpec::v100();
    let mut points = Vec::new();
    for n in BATCH_SIZES {
        for layer in RESNET_LAYERS {
            points.push((conv_for(&layer, n, &dev), Algo::CudnnWinograd));
            points.push((conv_for(&layer, n, &dev), Algo::ImplicitPrecompGemm));
        }
    }
    let mut timings = time_sweep("table2", points).into_iter();

    let mut report = Report::from_args("table2");
    let mut t = Table::new(&["N", "Conv2", "Conv3", "Conv4", "Conv5"]);
    let mut all = Vec::new();
    for n in BATCH_SIZES {
        let mut row = vec![n.to_string()];
        for layer in RESNET_LAYERS {
            let wino = timings.next().unwrap().time_s;
            let gemm = timings.next().unwrap().time_s;
            let sp = gemm / wino;
            all.push(sp);
            row.push(x(sp));
            report.add(
                dev.name,
                &[("layer", layer.name.into()), ("n", n.into())],
                &[
                    ("winograd_us", (wino * 1e6).into()),
                    ("gemm_us", (gemm * 1e6).into()),
                    ("speedup", sp.into()),
                ],
            );
        }
        t.row(row);
    }
    t.print();
    let avg = bench::mean(&all);
    println!("\naverage speedup: {}", x(avg));
    report.add(
        dev.name,
        &[("aggregate", "average".into())],
        &[("speedup", avg.into())],
    );

    if bench::metrics::wanted() {
        let mut points = Vec::new();
        let mut cfgs = Vec::new();
        for n in BATCH_SIZES {
            for layer in RESNET_LAYERS {
                for a in [Algo::CudnnWinograd, Algo::ImplicitPrecompGemm] {
                    points.push((conv_for(&layer, n, &dev), a));
                    cfgs.push((layer.name, n));
                }
            }
        }
        bench::metrics::add_conv_metrics_records(&mut report, "table2-metrics", points, |i, a| {
            let (layer, n) = cfgs[i];
            (
                dev.name.to_string(),
                vec![
                    ("layer", layer.into()),
                    ("n", n.into()),
                    ("algo", a.name().into()),
                ],
            )
        });
    }
    report.finish();
}
