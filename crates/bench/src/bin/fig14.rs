//! Figure 14: workspace (MB) required by each algorithm.
//! Paper highlights: ours needs 0.25-16 MB (transformed filter only); FFT
//! variants need hundreds of MB to > 1.6 GB on Conv5.

use bench::json::obj;
use bench::report::Report;
use bench::sweep::Sweep;
use bench::{analytic_key, configs, label, Table};
use gpusim::DeviceSpec;
use wino_core::{Algo, Conv};

fn main() {
    println!("Figure 14: workspace (MB) per algorithm\n");
    let algos = [
        Algo::Fft,
        Algo::FftTiling,
        Algo::Gemm,
        Algo::ImplicitGemm,
        Algo::ImplicitPrecompGemm,
        Algo::WinogradNonfused,
        Algo::OursFused,
    ];
    let mut sw = Sweep::from_args("fig14");
    for (layer, n) in configs() {
        for a in algos {
            let conv = Conv::new(layer.problem(n), DeviceSpec::v100());
            let key = analytic_key(
                &conv.device,
                &format!("fig14/{}/{}/{}", layer.name, n, a.name()),
            );
            sw.point(key, move || {
                obj(&[(
                    "workspace_mb",
                    (conv.workspace_bytes(a) as f64 / 1e6).into(),
                )])
            });
        }
    }
    let mut results = sw.run().results.into_iter();

    let mut report = Report::from_args("fig14");
    let mut headers = vec!["layer"];
    for a in &algos {
        headers.push(a.name());
    }
    let mut t = Table::new(&headers);
    for (layer, n) in configs() {
        let mut row = vec![label(&layer, n)];
        for a in algos {
            let r = results.next().unwrap();
            let mb = r
                .get("workspace_mb")
                .and_then(|v| v.as_f64())
                .expect("valid workspace record");
            row.push(format!("{mb:.1}"));
            report.add(
                "V100",
                &[
                    ("layer", layer.name.into()),
                    ("n", n.into()),
                    ("algo", a.name().into()),
                ],
                &[("workspace_mb", mb.into())],
            );
        }
        t.row(row);
    }
    t.print();

    // `--metrics`: counter-based classification of our kernel per config
    // (the other columns are workspace formulas with no simulated kernel).
    if bench::metrics::wanted() {
        let points = configs()
            .into_iter()
            .map(|(layer, n)| {
                (
                    Conv::new(layer.problem(n), DeviceSpec::v100()),
                    Algo::OursFused,
                )
            })
            .collect();
        let cfgs = configs();
        bench::metrics::add_conv_metrics_records(&mut report, "fig14-metrics", points, |i, a| {
            let (layer, n) = &cfgs[i];
            (
                "V100".to_string(),
                vec![
                    ("layer", layer.name.into()),
                    ("n", (*n).into()),
                    ("algo", a.name().into()),
                ],
            )
        });
    }
    report.finish();
}
