//! Figure 14: workspace (MB) required by each algorithm.
//! Paper highlights: ours needs 0.25-16 MB (transformed filter only); FFT
//! variants need hundreds of MB to > 1.6 GB on Conv5.

use bench::report::Report;
use bench::{configs, label, Table};
use gpusim::DeviceSpec;
use wino_core::{Algo, Conv};

fn main() {
    println!("Figure 14: workspace (MB) per algorithm\n");
    let mut report = Report::from_args("fig14");
    let algos = [
        Algo::Fft,
        Algo::FftTiling,
        Algo::Gemm,
        Algo::ImplicitGemm,
        Algo::ImplicitPrecompGemm,
        Algo::WinogradNonfused,
        Algo::OursFused,
    ];
    let mut headers = vec!["layer"];
    for a in &algos {
        headers.push(a.name());
    }
    let mut t = Table::new(&headers);
    for (layer, n) in configs() {
        let conv = Conv::new(layer.problem(n), DeviceSpec::v100());
        let mut row = vec![label(&layer, n)];
        for a in algos {
            let mb = conv.workspace_bytes(a) as f64 / 1e6;
            row.push(format!("{mb:.1}"));
            report.add(
                "V100",
                &[
                    ("layer", layer.name.into()),
                    ("n", n.into()),
                    ("algo", a.name().into()),
                ],
                &[("workspace_mb", mb.into())],
            );
        }
        t.row(row);
    }
    t.print();
    report.finish();
}
