//! `multiwave` — the one-wave model's partial-tail overcharge, measured.
//!
//! For every Table 2 `(layer, batch)` point on both devices, times the
//! paper's fused Winograd kernel under both timing models:
//!
//! * the retained one-wave analytic path (`gpusim::timing::time_kernel`):
//!   one steady-state wave on one SM, extrapolated to
//!   `ceil(total / (resident × SMs))` full device waves;
//! * the full-device multi-wave simulation (`gpusim::time_kernel_device`):
//!   every block dispatched to its SM, partial tail waves simulated exactly.
//!
//! The recorded divergence is *signed*. Positive `correction_pct` means the
//! one-wave model overcharged the grid — typically a partial tail billed as
//! a full device wave. Negative means the device model runs slower — the
//! effects only it can see: L2/L1 and memory-backlog carry from wave to
//! wave, and the per-wave bandwidth share of however many SMs are actually
//! busy. (Bit-for-bit agreement between the two models on exact-multiple
//! grids holds for coordinate-independent kernels and is pinned by
//! `gpusim/tests/device_sim.rs`; the real fused kernel carries cache state
//! across waves, so its grids diverge in both directions.) The committed
//! `BENCH_multiwave.json` at the repo root is this binary's output — the
//! record of which evaluation points move, and by how much.
//!
//! Flags: `--json PATH` (default `BENCH_multiwave.json`), `--smoke` (two
//! points + sanity asserts, for CI).

use bench::report::{flag_value, Report};
use bench::{configs, conv_for, Table};
use gpusim::DeviceSpec;
use wino_core::Algo;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json_path = flag_value(&args, "--json").unwrap_or_else(|| "BENCH_multiwave.json".into());

    println!("multiwave: one-wave extrapolation vs full-device simulation (fused kernel, ours)");
    let mut report = Report::to_path("multiwave", Some(json_path));
    let mut t = Table::new(&[
        "device",
        "layer",
        "N",
        "blocks",
        "busy SMs",
        "waves",
        "tail",
        "one-wave us",
        "device us",
        "corr %",
    ]);

    let mut overcharged = 0usize;
    let mut undercharged = 0usize;
    for dev in [DeviceSpec::v100(), DeviceSpec::rtx2070()] {
        let grid = configs();
        let points: Vec<_> = if smoke {
            // One partial-tail point is enough to smoke the machinery.
            grid.into_iter().take(1).collect()
        } else {
            grid
        };
        for (layer, n) in points {
            let conv = conv_for(&layer, n, &dev);
            let (ow, dv) = conv.time_fused_crosscheck(Algo::OursFused);
            let full_wave = dv.blocks_per_sm as u64 * dev.num_sms as u64;
            let partial = dv.total_blocks % full_wave != 0;
            let corr_pct = 100.0 * (ow.time_s - dv.time_s) / ow.time_s;

            // Sanity, not direction: the divergence is signed (see the
            // module doc), but the two models must stay in the same world.
            assert!(
                dv.time_s > 0.0 && ow.time_s > 0.0,
                "{}/{}: non-positive kernel time",
                layer.name,
                n
            );
            assert!(
                dv.time_s < 4.0 * ow.time_s && ow.time_s < 4.0 * dv.time_s,
                "{}/{}: models diverge beyond sanity (one-wave {:.3e}s, device {:.3e}s)",
                layer.name,
                n,
                ow.time_s,
                dv.time_s
            );
            if corr_pct > 0.0 {
                overcharged += 1;
            } else if corr_pct < 0.0 {
                undercharged += 1;
            }

            t.row(vec![
                dev.name.to_string(),
                layer.name.to_string(),
                n.to_string(),
                dv.total_blocks.to_string(),
                dv.busy_sms.to_string(),
                dv.waves.to_string(),
                if partial { "partial" } else { "full" }.to_string(),
                format!("{:.2}", ow.time_s * 1e6),
                format!("{:.2}", dv.time_s * 1e6),
                format!("{:.2}", corr_pct),
            ]);
            report.add(
                dev.name,
                &[("layer", layer.name.into()), ("n", n.into())],
                &[
                    ("total_blocks", dv.total_blocks.into()),
                    ("blocks_per_sm", dv.blocks_per_sm.into()),
                    ("busy_sms", dv.busy_sms.into()),
                    ("waves", dv.waves.into()),
                    ("partial_tail", partial.into()),
                    ("one_wave_us", (ow.time_s * 1e6).into()),
                    ("device_us", (dv.time_s * 1e6).into()),
                    ("correction_pct", corr_pct.into()),
                ],
            );
        }
    }
    t.print();
    println!(
        "\n{overcharged} points overcharged by the one-wave model (corr > 0), \
         {undercharged} undercharged (corr < 0)"
    );
    if smoke {
        println!("smoke OK");
    }
    report.finish();
}
