//! `simspeed` — host-side throughput of the timing simulator itself.
//!
//! Every experiment binary is bottlenecked on the timing simulator
//! (`gpusim::time_kernel_device` for end-to-end points, the one-wave
//! `gpusim::timing::time_kernel` for the main-loop region sweeps); this
//! benchmark tracks how fast those loops run on the host, independent of
//! what the simulated kernels score. It times a fixed kernel matrix (three
//! algorithm families × both devices, plus a one-wave main-loop point per
//! device) cold — no simcache involvement — and reports, per point:
//!
//! * `wall_ms`            — best-of-N wall-clock for one full timing run
//! * `wave_cycles`        — device makespan cycles (multi-wave points) or
//!   the single simulated wave's cycles (the one-wave point)
//! * `issued`             — warp-instructions issued (device total)
//! * `busy_sms`           — SMs that received blocks
//! * `sim_cycles_per_sec` — simulated cycles advanced per host second
//! * `sim_instr_per_sec`  — instructions issued per host second
//!
//! The committed `BENCH_simspeed.json` at the repo root is this binary's
//! output (see EXPERIMENTS.md "Simulator speed"); CI runs `--smoke`
//! to assert the numbers are sane but never gates on wall-clock.
//!
//! Flags: `--iters N` (default 3), `--json PATH` (default
//! `BENCH_simspeed.json`), `--smoke` (1 iteration + sanity asserts),
//! `--baseline PATH` (adds `speedup_vs_baseline` per point and prints the
//! geomean). `--cache`/`--no-cache` are accepted for flag parity with the
//! other binaries and ignored: simspeed always simulates cold.

use std::time::Instant;

use bench::json::parse;
use bench::report::{flag_value, Report};
use bench::Table;
use gpusim::DeviceSpec;
use wino_core::{Algo, Conv, ConvProblem};

/// The fixed matrix: one mid-size ResNet-like layer, three algorithm
/// families covering the fused Winograd path (ours + cuDNN-like schedule)
/// and the tiled-GEMM path. Sized so a full pre-optimization run finishes
/// in about a minute on one core.
const ALGOS: [Algo; 3] = [
    Algo::OursFused,
    Algo::CudnnWinograd,
    Algo::ImplicitPrecompGemm,
];

fn problem() -> ConvProblem {
    ConvProblem::resnet3x3(32, 64, 14, 64)
}

struct Point {
    device: &'static str,
    label: String,
    wall_ms: f64,
    wave_cycles: u64,
    issued: u64,
    busy_sms: u32,
    sim_time_s: f64,
}

fn measure(iters: u32) -> Vec<Point> {
    let prob = problem();
    let mut points = Vec::new();
    for dev in [DeviceSpec::v100(), DeviceSpec::rtx2070()] {
        for algo in ALGOS {
            let conv = Conv::new(prob, dev.clone());
            // One counted run for the exact work totals (identical timing
            // result; counters only add observation). These points run the
            // full-device multi-wave model: `wave_cycles` is the device
            // makespan and `issued` the device-total issue count.
            let counted = conv
                .time_counted(algo)
                .expect("matrix algorithm has no cycle-level kernel");
            let ctr = counted.counters.as_ref().expect("counters requested");
            // Best-of-N plain runs for the wall-clock (simulation is
            // deterministic; min discards scheduler noise).
            let mut best = f64::INFINITY;
            for _ in 0..iters.max(1) {
                let t0 = Instant::now();
                let timing = conv.time(algo);
                best = best.min(t0.elapsed().as_secs_f64());
                assert!(timing.time_s > 0.0);
            }
            points.push(Point {
                device: dev.name,
                label: algo.name().to_string(),
                wall_ms: best * 1e3,
                wave_cycles: counted.wave_cycles,
                issued: ctr.issued,
                busy_sms: counted.busy_sms,
                sim_time_s: counted.time_s,
            });
        }
        // One retained one-wave point (the main-loop region sweep of
        // Figures 7–9 stays on that path): tracks the single-SM wave loop's
        // throughput separately from the device model.
        let conv = Conv::new(prob, dev.clone());
        let (counted, _) = conv.time_fused_mainloop_counted(conv.ours_config());
        let ctr = counted.counters.as_ref().expect("counters requested");
        let mut best = f64::INFINITY;
        for _ in 0..iters.max(1) {
            let t0 = Instant::now();
            let (timing, _) = conv.time_fused_mainloop(conv.ours_config());
            best = best.min(t0.elapsed().as_secs_f64());
            assert!(timing.wave_cycles > 0);
        }
        points.push(Point {
            device: dev.name,
            label: "mainloop_one_wave".to_string(),
            wall_ms: best * 1e3,
            wave_cycles: counted.wave_cycles,
            issued: ctr.issued,
            busy_sms: counted.busy_sms,
            sim_time_s: counted.time_s,
        });
    }
    points
}

/// Look up `wall_ms` for the same (device, algo) point in a previous
/// `BENCH_simspeed.json`.
fn baseline_wall_ms(base: &bench::json::Json, device: &str, algo: &str) -> Option<f64> {
    base.as_arr()?.iter().find_map(|r| {
        (r.get("device")?.as_str()? == device && r.get("config")?.get("algo")?.as_str()? == algo)
            .then(|| r.get("metrics")?.get("wall_ms")?.as_f64())?
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let iters: u32 = if smoke {
        1
    } else {
        flag_value(&args, "--iters").map_or(3, |v| v.parse().expect("--iters N"))
    };
    let json_path = flag_value(&args, "--json").unwrap_or_else(|| "BENCH_simspeed.json".into());
    let baseline = flag_value(&args, "--baseline").map(|p| {
        let text = std::fs::read_to_string(&p)
            .unwrap_or_else(|e| panic!("failed to read --baseline {p}: {e}"));
        parse(&text).unwrap_or_else(|e| panic!("bad JSON in --baseline {p}: {e}"))
    });

    let prob = problem();
    println!(
        "simspeed: host throughput of time_kernel on {}x{}x{}x{} c={} ({} iters)",
        prob.n, prob.c, prob.h, prob.w, prob.k, iters
    );

    let points = measure(iters);

    let mut report = Report::to_path("simspeed", Some(json_path));
    let mut t = Table::new(&[
        "device",
        "algo",
        "wall ms",
        "wave cycles",
        "issued",
        "Mcyc/s",
        "Minstr/s",
    ]);
    let mut speedups = Vec::new();
    for p in &points {
        let wall_s = p.wall_ms / 1e3;
        let cps = p.wave_cycles as f64 / wall_s;
        let ips = p.issued as f64 / wall_s;
        if smoke {
            assert!(p.wall_ms > 0.0, "non-positive wall time");
            assert!(p.wave_cycles > 0 && p.issued > 0, "empty simulation");
            // Device-model points report device-total issues over the
            // makespan: the per-cycle issue capacity is 4 schedulers × 2
            // dispatch on every busy SM.
            assert!(
                p.issued <= p.wave_cycles * 8 * p.busy_sms.max(1) as u64,
                "issue rate impossible"
            );
            assert!(p.sim_time_s > 0.0, "non-positive simulated time");
        }
        t.row(vec![
            p.device.to_string(),
            p.label.clone(),
            format!("{:.1}", p.wall_ms),
            p.wave_cycles.to_string(),
            p.issued.to_string(),
            format!("{:.2}", cps / 1e6),
            format!("{:.2}", ips / 1e6),
        ]);
        let mut metrics: Vec<(&str, bench::json::Json)> = vec![
            ("wall_ms", p.wall_ms.into()),
            ("wave_cycles", p.wave_cycles.into()),
            ("issued", p.issued.into()),
            ("sim_cycles_per_sec", cps.into()),
            ("sim_instr_per_sec", ips.into()),
            ("sim_time_s", p.sim_time_s.into()),
            ("busy_sms", p.busy_sms.into()),
        ];
        if let Some(base) = &baseline {
            if let Some(b) = baseline_wall_ms(base, p.device, &p.label) {
                let s = b / p.wall_ms;
                speedups.push(s);
                metrics.push(("speedup_vs_baseline", s.into()));
            }
        }
        report.add(
            p.device,
            &[
                ("algo", p.label.as_str().into()),
                ("n", prob.n.into()),
                ("c", prob.c.into()),
                ("hw", prob.h.into()),
                ("k", prob.k.into()),
                ("iters", iters.into()),
            ],
            &metrics,
        );
    }
    t.print();
    if !speedups.is_empty() {
        let geomean = (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64).exp();
        println!("\nspeedup vs baseline: geomean {geomean:.2}x");
    }
    if smoke {
        println!("\nsmoke OK: {} points, all sane", points.len());
    }
    report.finish();
}
