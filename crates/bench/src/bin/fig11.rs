//! Figure 11: Speed-of-Light on V100 (see fig10).

use bench::report::Report;
use bench::{configs, label, time_sweep, Table};
use gpusim::DeviceSpec;
use wino_core::{Algo, Conv};

fn main() {
    let dev = DeviceSpec::v100();
    println!("Figure 11: Speed of Light (simulated V100)");
    println!("Paper: main loop up to ~93%, total ~75-95%\n");
    let points = configs()
        .into_iter()
        .map(|(layer, n)| (Conv::new(layer.problem(n), dev.clone()), Algo::OursFused))
        .collect();
    let mut timings = time_sweep("fig11", points).into_iter();

    let mut report = Report::from_args("fig11");
    let mut t = Table::new(&["layer", "Total %", "Main loop %"]);
    for (layer, n) in configs() {
        let timing = timings.next().unwrap();
        let k = timing.kernel.expect("fused kernel timing");
        t.row(vec![
            label(&layer, n),
            format!("{:.1}", k.sol_total_pct),
            format!("{:.1}", k.sol_pct),
        ]);
        report.add(
            dev.name,
            &[("layer", layer.name.into()), ("n", n.into())],
            &[
                ("sol_total_pct", k.sol_total_pct.into()),
                ("sol_mainloop_pct", k.sol_pct.into()),
            ],
        );
    }
    t.print();

    if bench::metrics::wanted() {
        let points = configs()
            .into_iter()
            .map(|(layer, n)| (Conv::new(layer.problem(n), dev.clone()), Algo::OursFused))
            .collect();
        let cfgs = configs();
        bench::metrics::add_conv_metrics_records(&mut report, "fig11-metrics", points, |i, a| {
            let (layer, n) = &cfgs[i];
            (
                dev.name.to_string(),
                vec![
                    ("layer", layer.name.into()),
                    ("n", (*n).into()),
                    ("algo", a.name().into()),
                ],
            )
        });
    }
    report.finish();
}
