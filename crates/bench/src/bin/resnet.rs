//! `resnet` — whole-network evaluation of the Table 1 chain.
//!
//! Builds the ResNet-50 3×3 network ([`NetGraph::resnet50`]) at every
//! Table 1 batch size, plans it on both devices under three policies —
//! `auto` (fastest candidate per layer, the paper's kernel included),
//! `baseline` (the cuDNN-like library: fastest candidate *excluding* the
//! paper's kernel), and `fused` (the paper's kernel everywhere) — and
//! reports what only a network-level view can show:
//!
//! * end-to-end time, cold (filter transforms recomputed per request, the
//!   cuDNN per-call behaviour) vs steady (transforms hoisted into the
//!   persistent cache and amortized across batches/requests);
//! * the workspace arena: peak bytes under linear-scan reuse vs bump
//!   allocation, with and without transform hoisting — the fused kernel's
//!   no-workspace advantage as a single arena number (Fig. 14 at network
//!   scale);
//! * per-layer algorithm choices with their transform/kernel split.
//!
//! Every candidate timing runs through the shared sweep engine
//! (`--jobs/--cache/...`), memoized under `Conv::time_digest`, so the
//! output is byte-identical across job counts and cache states.
//!
//! Flags: `--json PATH` (default `BENCH_resnet.json`), `--smoke` (the
//! 4-node smoke graph + invariant asserts, for CI).

use std::collections::HashMap;

use bench::report::{flag_value, Report};
use bench::{time_sweep, Table};
use gpusim::DeviceSpec;
use wino_core::netgraph::LayerTimer;
use wino_core::resnet::BATCH_SIZES;
use wino_core::{Algo, AlgoPolicy, AlgoTiming, Conv, ConvProblem, NetGraph, NetPlan};

/// Stable lookup key for one timing point.
fn point_key(dev: &DeviceSpec, p: &ConvProblem, algo: Algo) -> String {
    format!(
        "{}|{}x{}x{}x{}x{}|{}",
        dev.name,
        p.n,
        p.c,
        p.h,
        p.w,
        p.k,
        algo.name()
    )
}

/// [`LayerTimer`] backed by the sweep-memoized timing table.
struct MapTimer<'a> {
    timings: &'a HashMap<String, AlgoTiming>,
}

impl LayerTimer for MapTimer<'_> {
    fn time(&self, conv: &Conv, algo: Algo) -> AlgoTiming {
        let key = point_key(&conv.device, &conv.problem, algo);
        self.timings
            .get(&key)
            .unwrap_or_else(|| panic!("timing point {key} not enumerated"))
            .clone()
    }
}

const POLICIES: [AlgoPolicy; 3] = [
    AlgoPolicy::Auto,
    AlgoPolicy::Baseline,
    AlgoPolicy::Fixed(Algo::OursFused),
];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json_path = flag_value(&args, "--json").unwrap_or_else(|| "BENCH_resnet.json".into());

    println!("resnet: whole-network runtime (memory planner + hoisted transform cache)");
    let devices = [DeviceSpec::v100(), DeviceSpec::rtx2070()];
    let graphs: Vec<NetGraph> = if smoke {
        vec![NetGraph::smoke(32)]
    } else {
        BATCH_SIZES.iter().map(|&n| NetGraph::resnet50(n)).collect()
    };

    // Enumerate every timing point any policy will probe, dedup, and run
    // them through the sweep engine in one deterministic registration pass.
    let mut points: Vec<(Conv, Algo)> = Vec::new();
    let mut keys: Vec<String> = Vec::new();
    for dev in &devices {
        for g in &graphs {
            for policy in POLICIES {
                for (_, node) in g.conv_nodes() {
                    for algo in policy.candidates(&node.problem, dev) {
                        let key = point_key(dev, &node.problem, algo);
                        if !keys.contains(&key) {
                            keys.push(key);
                            points.push((Conv::new(node.problem, dev.clone()), algo));
                        }
                    }
                }
            }
        }
    }
    let results = time_sweep("resnet", points);
    let timings: HashMap<String, AlgoTiming> = keys.into_iter().zip(results).collect();
    let timer = MapTimer { timings: &timings };

    let mut report = Report::to_path("resnet", Some(json_path));
    let mut t = Table::new(&[
        "device",
        "batch",
        "policy",
        "cold us",
        "steady us",
        "xform us",
        "reuse MB",
        "noreuse MB",
        "unhoist MB",
        "TFLOPS",
    ]);

    let mb = |b: u64| format!("{:.2}", b as f64 / (1024.0 * 1024.0));
    // (device, batch) -> plan, for the cross-policy headline asserts.
    let mut plans: HashMap<(String, usize, String), NetPlan> = HashMap::new();

    for dev in &devices {
        for g in &graphs {
            for policy in POLICIES {
                let plan = g.plan(dev, policy, &timer);
                plan.validate()
                    .unwrap_or_else(|e| panic!("{}/{}/{}: {e}", dev.name, g.batch, plan.policy));
                // Per-layer sum-consistency with the end-to-end report,
                // asserted explicitly on top of validate().
                let layer_sum: f64 =
                    plan.choices.iter().map(|c| c.time_s).sum::<f64>() + plan.transitions_s;
                assert!(
                    (layer_sum - plan.time_cold_s).abs() <= 1e-9 * plan.time_cold_s,
                    "per-layer sum diverges from end-to-end time"
                );

                t.row(vec![
                    dev.name.to_string(),
                    g.batch.to_string(),
                    plan.policy.clone(),
                    format!("{:.1}", plan.time_cold_s * 1e6),
                    format!("{:.1}", plan.time_steady_s * 1e6),
                    format!("{:.1}", plan.transform_total_s * 1e6),
                    mb(plan.arena_reuse.plan.peak_bytes),
                    mb(plan.arena_noreuse.plan.peak_bytes),
                    mb(plan.arena_reuse_unhoisted.plan.peak_bytes),
                    format!("{:.2}", plan.tflops_steady(g)),
                ]);
                report.add(
                    dev.name,
                    &[
                        ("kind", "network".into()),
                        ("graph", plan.graph.as_str().into()),
                        ("batch", g.batch.into()),
                        ("policy", plan.policy.as_str().into()),
                    ],
                    &[
                        ("layers", plan.choices.len().into()),
                        ("net_cold_us", (plan.time_cold_s * 1e6).into()),
                        ("net_steady_us", (plan.time_steady_s * 1e6).into()),
                        ("transform_us", (plan.transform_total_s * 1e6).into()),
                        ("transitions_us", (plan.transitions_s * 1e6).into()),
                        ("probe_us", (plan.probe_s * 1e6).into()),
                        ("tflops_steady", plan.tflops_steady(g).into()),
                        ("peak_reuse_bytes", plan.arena_reuse.plan.peak_bytes.into()),
                        (
                            "peak_noreuse_bytes",
                            plan.arena_noreuse.plan.peak_bytes.into(),
                        ),
                        (
                            "peak_reuse_unhoisted_bytes",
                            plan.arena_reuse_unhoisted.plan.peak_bytes.into(),
                        ),
                        ("hoisted_bytes", plan.hoisted_bytes.into()),
                    ],
                );
                // Per-layer records for the selector policies (the fixed
                // policy's layers are all the same algorithm by definition).
                if policy != AlgoPolicy::Fixed(Algo::OursFused) {
                    for c in &plan.choices {
                        report.add(
                            dev.name,
                            &[
                                ("kind", "layer".into()),
                                ("graph", plan.graph.as_str().into()),
                                ("batch", g.batch.into()),
                                ("policy", plan.policy.as_str().into()),
                                ("layer", c.name.as_str().into()),
                            ],
                            &[
                                ("algo", c.algo.name().into()),
                                ("time_us", (c.time_s * 1e6).into()),
                                ("transform_us", (c.transform_s * 1e6).into()),
                                ("kernel_us", (c.kernel_s * 1e6).into()),
                                ("workspace_bytes", c.workspace_bytes.into()),
                                ("workspace_hoisted_bytes", c.workspace_hoisted_bytes.into()),
                                ("hoisted_bytes", c.hoisted_bytes.into()),
                            ],
                        );
                    }
                }
                plans.insert((dev.name.to_string(), g.batch, plan.policy.clone()), plan);
            }
        }
    }
    t.print();

    // Headline invariants, every (device, batch): the hoisted transform
    // cache strictly reduces network time, the reuse arena never loses to
    // bump allocation, and the paper's-kernel runtime (transforms hoisted)
    // peaks below the cuDNN-like baseline left re-transforming per call.
    for dev in &devices {
        for g in &graphs {
            let get = |p: &str| &plans[&(dev.name.to_string(), g.batch, p.to_string())];
            let auto = get("auto");
            let baseline = get("baseline");
            let fused = get("fixed:OURS");
            assert!(
                auto.time_steady_s < auto.time_cold_s,
                "{}/{}: hoisting the filter transforms must reduce network time",
                dev.name,
                g.batch
            );
            assert!(
                auto.arena_reuse.plan.peak_bytes <= auto.arena_noreuse.plan.peak_bytes,
                "{}/{}: reuse arena lost to bump allocation",
                dev.name,
                g.batch
            );
            assert!(
                fused.arena_reuse.plan.peak_bytes < baseline.arena_reuse_unhoisted.plan.peak_bytes,
                "{}/{}: fused network arena ({}) must peak below the \
                 per-call-transform baseline ({})",
                dev.name,
                g.batch,
                fused.arena_reuse.plan.peak_bytes,
                baseline.arena_reuse_unhoisted.plan.peak_bytes
            );
            assert!(
                auto.time_steady_s <= baseline.time_steady_s,
                "{}/{}: the selector with the paper's kernel available must \
                 not lose to the baseline",
                dev.name,
                g.batch
            );
        }
    }

    let auto_steady: f64 = plans
        .iter()
        .filter(|((_, _, p), _)| p == "auto")
        .map(|(_, p)| p.time_steady_s)
        .sum();
    let base_steady: f64 = plans
        .iter()
        .filter(|((_, _, p), _)| p == "baseline")
        .map(|(_, p)| p.time_steady_s)
        .sum();
    println!(
        "\nnetwork steady-state speedup over cuDNN-like baseline (all devices/batches): {:.2}x",
        base_steady / auto_steady
    );
    if smoke {
        println!("smoke OK");
    }
    report.finish();
}
