//! `convbench` — run any single convolution configuration through any
//! algorithm on either simulated device.
//!
//! ```text
//! convbench [--device v100|rtx2070] [--algo ours|winograd|gemm|implicit|
//!            precomp|nonfused|fft|fft-tiling|all] [--n N] [--c C] [--hw HW]
//!            [--k K] [--layer Conv2|Conv3|Conv4|Conv5] [--verify]
//!            [--profile] [--metrics] [--json PATH] [--trace PATH]
//!            [--jobs N] [--cache|--no-cache] [--cache-dir PATH] [--selfcheck]
//! ```
//!
//! `--profile` runs the fused kernel through the cycle simulator with
//! per-instruction stall attribution on, and prints the top hot lines with
//! their stall breakdown plus per-region totals. `--metrics` re-times each
//! algorithm's dominant kernel with hardware counters on, prints the
//! bottleneck classification table and appends `kind=metrics` records to the
//! `--json` report (see `bench::metrics`). `--trace PATH` writes the fused
//! kernel's full-device multi-wave timeline as Chrome trace-event JSON
//! (load in Perfetto or `chrome://tracing`): one lane per SM, each wave a
//! complete event, wave hand-offs as instants — the `exact`-mode device
//! simulation of every SM, so tail waves and SM imbalance are visible
//! instead of extrapolated. `--json PATH` writes the measured numbers as
//! JSON records.

use bench::report::Report;
use gpusim::{DeviceSpec, KernelProfile, StallCause};
use tensor::{allclose, LayoutKind, Tensor4};
use wino_core::resnet::layer_by_name;
use wino_core::{conv2d_direct, Algo, Conv, ConvProblem};

struct Args {
    device: DeviceSpec,
    algos: Vec<Algo>,
    problem: ConvProblem,
    verify: bool,
    profile: bool,
    metrics: bool,
    json: Option<String>,
    trace: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut device = DeviceSpec::rtx2070();
    let mut algos = vec![Algo::OursFused];
    let (mut n, mut c, mut hw, mut k) = (32usize, 64usize, 56usize, 64usize);
    let mut verify = false;
    let mut profile = false;
    let mut metrics = false;
    let mut json = None;
    let mut trace = None;
    let mut i = 0;
    let value = |args: &[String], i: usize| -> Result<String, String> {
        args.get(i + 1)
            .cloned()
            .ok_or_else(|| format!("{} needs a value", args[i]))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--device" => {
                device = match value(&args, i)?.as_str() {
                    "v100" => DeviceSpec::v100(),
                    "rtx2070" => DeviceSpec::rtx2070(),
                    other => return Err(format!("unknown device {other}")),
                };
                i += 2;
            }
            "--algo" => {
                algos = match value(&args, i)?.as_str() {
                    "ours" => vec![Algo::OursFused],
                    "winograd" => vec![Algo::CudnnWinograd],
                    "gemm" => vec![Algo::Gemm],
                    "implicit" => vec![Algo::ImplicitGemm],
                    "precomp" => vec![Algo::ImplicitPrecompGemm],
                    "nonfused" => vec![Algo::WinogradNonfused],
                    "fft" => vec![Algo::Fft],
                    "fft-tiling" => vec![Algo::FftTiling],
                    "all" => Algo::ALL.to_vec(),
                    other => return Err(format!("unknown algo {other}")),
                };
                i += 2;
            }
            "--layer" => {
                let l = layer_by_name(&value(&args, i)?).ok_or("unknown layer")?;
                c = l.c;
                k = l.c;
                hw = l.hw;
                i += 2;
            }
            "--n" => {
                n = value(&args, i)?.parse().map_err(|e| format!("--n: {e}"))?;
                i += 2;
            }
            "--c" => {
                c = value(&args, i)?.parse().map_err(|e| format!("--c: {e}"))?;
                i += 2;
            }
            "--hw" => {
                hw = value(&args, i)?.parse().map_err(|e| format!("--hw: {e}"))?;
                i += 2;
            }
            "--k" => {
                k = value(&args, i)?.parse().map_err(|e| format!("--k: {e}"))?;
                i += 2;
            }
            "--verify" => {
                verify = true;
                i += 1;
            }
            "--profile" => {
                profile = true;
                i += 1;
            }
            "--metrics" => {
                metrics = true;
                i += 1;
            }
            "--json" => {
                json = Some(value(&args, i)?);
                i += 2;
            }
            "--trace" => {
                trace = Some(value(&args, i)?);
                i += 2;
            }
            // Sweep-engine flags, parsed by `SweepOptions::from_args` inside
            // `time_sweep`; accepted here so the strict parser passes them.
            "--jobs" | "--cache-dir" => {
                value(&args, i)?;
                i += 2;
            }
            "--cache" | "--no-cache" | "--selfcheck" => i += 1,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    // The GPU kernels carry the paper's alignment constraints (§8.3);
    // reject misaligned shapes with a clean message instead of a panic.
    if n % 32 != 0 {
        return Err(format!("--n must be a multiple of 32 (got {n})"));
    }
    if c % 8 != 0 {
        return Err(format!("--c must be a multiple of 8 (got {c})"));
    }
    let needs_k64 = algos.iter().any(|a| {
        matches!(
            a,
            Algo::OursFused
                | Algo::Gemm
                | Algo::ImplicitGemm
                | Algo::ImplicitPrecompGemm
                | Algo::WinogradNonfused
        )
    });
    if needs_k64 && k % 64 != 0 {
        return Err(format!(
            "--k must be a multiple of 64 for this algorithm set (got {k})"
        ));
    }
    if k % 32 != 0 {
        return Err(format!("--k must be a multiple of 32 (got {k})"));
    }
    if (profile || trace.is_some())
        && !algos
            .iter()
            .any(|a| matches!(a, Algo::OursFused | Algo::CudnnWinograd))
    {
        return Err("--profile/--trace need a fused kernel algo (ours or winograd)".into());
    }
    Ok(Args {
        device,
        algos,
        problem: ConvProblem::resnet3x3(n, c, hw, k),
        verify,
        profile,
        metrics,
        json,
        trace,
    })
}

fn main() {
    let Args {
        device,
        algos,
        problem,
        verify,
        profile,
        metrics,
        json,
        trace,
    } = match parse_args() {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("see the module docs at the top of convbench.rs for usage");
            std::process::exit(2);
        }
    };
    let mut report = Report::to_path("convbench", json);
    let dev_name = device.name;
    println!(
        "{}  N={} C={} HxW={}x{} K={}",
        device.name, problem.n, problem.c, problem.h, problem.w, problem.k
    );
    let points = algos
        .iter()
        .map(|&a| (Conv::new(problem, device.clone()), a))
        .collect();
    let timings = bench::time_sweep("convbench", points);
    let conv = Conv::new(problem, device);

    let reference = if verify {
        let input = Tensor4::random(
            LayoutKind::Nchw,
            [problem.n, problem.c, problem.h, problem.w],
            -1.0,
            1.0,
            1,
        );
        let filter = Tensor4::random(LayoutKind::Kcrs, [problem.k, problem.c, 3, 3], -1.0, 1.0, 2);
        let want = conv2d_direct(&problem, &input, &filter);
        Some((input, filter, want))
    } else {
        None
    };

    println!(
        "{:<24} {:>10} {:>9} {:>11} {:>9}",
        "algorithm", "time (us)", "eff TF", "wkspc (MB)", "verify"
    );
    for (&algo, t) in algos.iter().zip(&timings) {
        let v = match &reference {
            Some((input, filter, want)) => {
                let got = conv.run(algo, input, filter);
                if allclose(want.as_slice(), got.output.as_slice(), 5e-3, 5e-3) {
                    "PASS"
                } else {
                    "FAIL"
                }
            }
            None => "-",
        };
        let workspace_mb = conv.workspace_bytes(algo) as f64 / 1e6;
        println!(
            "{:<24} {:>10.1} {:>9.2} {:>11.2} {:>9}",
            algo.name(),
            t.time_s * 1e6,
            t.tflops_effective,
            workspace_mb,
            v
        );
        report.add(
            dev_name,
            &[
                ("algo", algo.name().into()),
                ("n", problem.n.into()),
                ("c", problem.c.into()),
                ("hw", problem.h.into()),
                ("k", problem.k.into()),
            ],
            &[
                ("time_us", (t.time_s * 1e6).into()),
                ("tflops_effective", t.tflops_effective.into()),
                ("workspace_mb", workspace_mb.into()),
                ("verify", v.into()),
            ],
        );
    }

    if metrics {
        let points: Vec<(Conv, Algo)> = algos
            .iter()
            .map(|&a| (Conv::new(problem, conv.device.clone()), a))
            .collect();
        let records = bench::metrics::conv_metrics_sweep("convbench-metrics", points);
        println!("\n== hardware counters & bottleneck classification ==");
        let rows: Vec<(String, bench::json::Json)> = algos
            .iter()
            .zip(&records)
            .filter_map(|(&a, r)| r.clone().map(|m| (a.name().to_string(), m)))
            .collect();
        bench::metrics::print_metrics_table(&rows);
        for (&algo, rec) in algos.iter().zip(&records) {
            let Some(m) = rec else {
                println!("{:<24} (analytic model, no simulated kernel)", algo.name());
                continue;
            };
            let bench::json::Json::Obj(fields) = m else {
                unreachable!("metrics records are objects")
            };
            let owned: Vec<(&str, bench::json::Json)> = fields
                .iter()
                .map(|(k, v)| (k.as_str(), v.clone()))
                .collect();
            report.add(
                dev_name,
                &bench::metrics::metrics_config(&[
                    ("algo", algo.name().into()),
                    ("n", problem.n.into()),
                    ("c", problem.c.into()),
                    ("hw", problem.h.into()),
                    ("k", problem.k.into()),
                ]),
                &owned,
            );
        }
    }

    if profile || trace.is_some() {
        let algo = algos
            .iter()
            .copied()
            .find(|a| matches!(a, Algo::OursFused | Algo::CudnnWinograd))
            .unwrap();
        if profile {
            let t = conv.time_fused_profiled(algo);
            let p = t.profile.as_ref().expect("profiled run carries a profile");
            print_profile(algo, p, &mut report, dev_name, &problem);
        }
        if let Some(path) = &trace {
            let (_, dt) = conv.time_fused_traced(algo);
            let tr = wave_trace(algo, &conv.device, &dt);
            std::fs::write(path, tr.render())
                .unwrap_or_else(|e| panic!("failed to write --trace {path}: {e}"));
            println!(
                "\n[trace] wrote {} wave spans to {path}{}",
                dt.spans.len(),
                if dt.truncated { " (truncated)" } else { "" }
            );
            if dt.truncated {
                eprintln!(
                    "[trace] warning: wave-span buffer hit its cap; the trace covers only \
                     the first {} spans of the launch (the file carries \"truncated\": true)",
                    dt.spans.len()
                );
            }
        }
    }
    report.finish();
}

/// Render a full-device wave timeline as a Chrome trace: one lane per SM,
/// each wave execution a complete event (a span with `repeats > 1` covers
/// that many identical back-to-back waves collapsed by the simulator's
/// steady-state fast path), and a "wave boundary" instant on each lane at
/// every hand-off between consecutive spans. `ts`/`dur` are SM cycles.
fn wave_trace(algo: Algo, dev: &DeviceSpec, dt: &gpusim::DeviceTrace) -> bench::trace::ChromeTrace {
    let mut tr = bench::trace::ChromeTrace::new();
    tr.set_truncated(dt.truncated);
    tr.process_name(0, &format!("{} on {}", algo.name(), dev.name));
    let mut last_sm = None;
    for s in &dt.spans {
        // Spans arrive grouped by SM in ascending-SM order; name each lane
        // once, and mark the boundary with the lane's previous wave.
        if last_sm != Some(s.sm) {
            tr.thread_name(0, s.sm as u64, &format!("SM {}", s.sm));
        } else {
            tr.instant(0, s.sm as u64, "wave boundary", s.start_cycle, &[]);
        }
        last_sm = Some(s.sm);
        tr.complete(
            0,
            s.sm as u64,
            &format!("wave {}", s.wave),
            s.start_cycle,
            s.duration(),
            &[
                ("blocks", s.blocks.into()),
                ("repeats", s.repeats.into()),
                ("cycles_per_wave", s.cycles.into()),
                ("share_sms", s.share_sms.into()),
            ],
        );
    }
    tr
}

/// Print per-region totals and the top hot lines with stall attribution,
/// ending with the reconciliation identity against `wave_cycles`.
fn print_profile(
    algo: Algo,
    p: &KernelProfile,
    report: &mut Report,
    dev_name: &str,
    problem: &ConvProblem,
) {
    let slots = p.schedulers as u64 * p.wave_cycles;
    let issue: u64 = p.lines.iter().map(|l| l.issue_cycles).sum();
    let stalls: u64 = p.lines.iter().map(|l| l.stalls.total()).sum();
    println!("\n== stall-attribution profile: {} ==", algo.name());
    println!(
        "wave_cycles {}  schedulers {}  issue slots {} ({:.1}%)  stall slots {}  empty {}",
        p.wave_cycles,
        p.schedulers,
        issue,
        100.0 * issue as f64 / slots as f64,
        stalls,
        p.empty_cycles
    );

    println!("\nper-region slot cycles:");
    println!(
        "{:<20} {:>12} {:>14} {:>7}",
        "region", "executed", "slot cycles", "share"
    );
    for (name, executed, cycles) in p.region_totals() {
        println!(
            "{:<20} {:>12} {:>14} {:>6.1}%",
            name,
            executed,
            cycles,
            100.0 * cycles as f64 / slots as f64
        );
    }

    const TOP_N: usize = 20;
    println!("\ntop {TOP_N} hot lines (slot cycles = issue + attributed stalls):");
    println!(
        "{:>5} {:<16} {:>10} {:>9} {:>8} {:>8} {:>8} {:>8} {:>8} {:>7} {:>7}  instruction",
        "line",
        "region",
        "executed",
        "issue",
        "barrier",
        "scbrd",
        "mio",
        "stallct",
        "pipe",
        "yield",
        "bankcf"
    );
    for pc in p.hot_lines(TOP_N) {
        let l = &p.lines[pc];
        let region = p
            .region_of(pc as u32)
            .map(|r| r.name.as_str())
            .unwrap_or("-");
        let mut text = l.text.clone();
        if text.len() > 44 {
            text.truncate(41);
            text.push_str("...");
        }
        println!(
            "{:>5} {:<16} {:>10} {:>9} {:>8} {:>8} {:>8} {:>8} {:>8} {:>7} {:>7}  {}",
            pc,
            region,
            l.executed,
            l.issue_cycles,
            l.stalls.by_cause[StallCause::Barrier as usize],
            l.stalls.by_cause[StallCause::Scoreboard as usize],
            l.stalls.by_cause[StallCause::MioQueue as usize],
            l.stalls.by_cause[StallCause::StallCount as usize],
            l.stalls.by_cause[StallCause::PipeBusy as usize],
            l.stalls.yield_switch,
            l.bank_conflict_cycles,
            text
        );
    }

    let attributed = p.attributed_cycles();
    println!(
        "\nreconciliation: issue {} + stalls {} + empty {} = {}  vs  {} schedulers x {} wave_cycles = {}  [{}]",
        issue,
        stalls,
        p.empty_cycles,
        attributed,
        p.schedulers,
        p.wave_cycles,
        slots,
        if attributed == slots { "OK" } else { "MISMATCH" }
    );

    let mut by_cause: [u64; 5] = [0; 5];
    let mut yield_switch = 0u64;
    for l in &p.lines {
        for c in StallCause::ALL {
            by_cause[c as usize] += l.stalls.by_cause[c as usize];
        }
        yield_switch += l.stalls.yield_switch;
    }
    let mut metrics: Vec<(&str, bench::json::Json)> = vec![
        ("wave_cycles", p.wave_cycles.into()),
        ("schedulers", p.schedulers.into()),
        ("issue_slots", issue.into()),
        ("empty_slots", p.empty_cycles.into()),
        ("yield_switch_slots", yield_switch.into()),
    ];
    for c in StallCause::ALL {
        metrics.push((c.name(), by_cause[c as usize].into()));
    }
    report.add(
        dev_name,
        &[
            ("algo", algo.name().into()),
            ("n", problem.n.into()),
            ("c", problem.c.into()),
            ("hw", problem.h.into()),
            ("k", problem.k.into()),
            ("kind", "profile".into()),
        ],
        &metrics,
    );
}
