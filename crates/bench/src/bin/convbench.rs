//! `convbench` — run any single convolution configuration through any
//! algorithm on either simulated device.
//!
//! ```text
//! convbench [--device v100|rtx2070] [--algo ours|winograd|gemm|implicit|
//!            precomp|nonfused|fft|fft-tiling|all] [--n N] [--c C] [--hw HW]
//!            [--k K] [--layer Conv2|Conv3|Conv4|Conv5] [--verify]
//! ```

use gpusim::DeviceSpec;
use tensor::{allclose, LayoutKind, Tensor4};
use wino_core::resnet::layer_by_name;
use wino_core::{conv2d_direct, Algo, Conv, ConvProblem};

fn parse_args() -> Result<(DeviceSpec, Vec<Algo>, ConvProblem, bool), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut device = DeviceSpec::rtx2070();
    let mut algos = vec![Algo::OursFused];
    let (mut n, mut c, mut hw, mut k) = (32usize, 64usize, 56usize, 64usize);
    let mut verify = false;
    let mut i = 0;
    let value = |args: &[String], i: usize| -> Result<String, String> {
        args.get(i + 1).cloned().ok_or_else(|| format!("{} needs a value", args[i]))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--device" => {
                device = match value(&args, i)?.as_str() {
                    "v100" => DeviceSpec::v100(),
                    "rtx2070" => DeviceSpec::rtx2070(),
                    other => return Err(format!("unknown device {other}")),
                };
                i += 2;
            }
            "--algo" => {
                algos = match value(&args, i)?.as_str() {
                    "ours" => vec![Algo::OursFused],
                    "winograd" => vec![Algo::CudnnWinograd],
                    "gemm" => vec![Algo::Gemm],
                    "implicit" => vec![Algo::ImplicitGemm],
                    "precomp" => vec![Algo::ImplicitPrecompGemm],
                    "nonfused" => vec![Algo::WinogradNonfused],
                    "fft" => vec![Algo::Fft],
                    "fft-tiling" => vec![Algo::FftTiling],
                    "all" => Algo::ALL.to_vec(),
                    other => return Err(format!("unknown algo {other}")),
                };
                i += 2;
            }
            "--layer" => {
                let l = layer_by_name(&value(&args, i)?).ok_or("unknown layer")?;
                c = l.c;
                k = l.c;
                hw = l.hw;
                i += 2;
            }
            "--n" => {
                n = value(&args, i)?.parse().map_err(|e| format!("--n: {e}"))?;
                i += 2;
            }
            "--c" => {
                c = value(&args, i)?.parse().map_err(|e| format!("--c: {e}"))?;
                i += 2;
            }
            "--hw" => {
                hw = value(&args, i)?.parse().map_err(|e| format!("--hw: {e}"))?;
                i += 2;
            }
            "--k" => {
                k = value(&args, i)?.parse().map_err(|e| format!("--k: {e}"))?;
                i += 2;
            }
            "--verify" => {
                verify = true;
                i += 1;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    // The GPU kernels carry the paper's alignment constraints (§8.3);
    // reject misaligned shapes with a clean message instead of a panic.
    if n % 32 != 0 {
        return Err(format!("--n must be a multiple of 32 (got {n})"));
    }
    if c % 8 != 0 {
        return Err(format!("--c must be a multiple of 8 (got {c})"));
    }
    let needs_k64 = algos.iter().any(|a| {
        matches!(a, Algo::OursFused | Algo::Gemm | Algo::ImplicitGemm | Algo::ImplicitPrecompGemm | Algo::WinogradNonfused)
    });
    if needs_k64 && k % 64 != 0 {
        return Err(format!("--k must be a multiple of 64 for this algorithm set (got {k})"));
    }
    if k % 32 != 0 {
        return Err(format!("--k must be a multiple of 32 (got {k})"));
    }
    Ok((device, algos, ConvProblem::resnet3x3(n, c, hw, k), verify))
}

fn main() {
    let (device, algos, problem, verify) = match parse_args() {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("see the module docs at the top of convbench.rs for usage");
            std::process::exit(2);
        }
    };
    println!(
        "{}  N={} C={} HxW={}x{} K={}",
        device.name, problem.n, problem.c, problem.h, problem.w, problem.k
    );
    let conv = Conv::new(problem, device);

    let reference = if verify {
        let input = Tensor4::random(LayoutKind::Nchw, [problem.n, problem.c, problem.h, problem.w], -1.0, 1.0, 1);
        let filter = Tensor4::random(LayoutKind::Kcrs, [problem.k, problem.c, 3, 3], -1.0, 1.0, 2);
        let want = conv2d_direct(&problem, &input, &filter);
        Some((input, filter, want))
    } else {
        None
    };

    println!(
        "{:<24} {:>10} {:>9} {:>11} {:>9}",
        "algorithm", "time (us)", "eff TF", "wkspc (MB)", "verify"
    );
    for algo in algos {
        let t = conv.time(algo);
        let v = match &reference {
            Some((input, filter, want)) => {
                let got = conv.run(algo, input, filter);
                if allclose(want.as_slice(), got.output.as_slice(), 5e-3, 5e-3) {
                    "PASS"
                } else {
                    "FAIL"
                }
            }
            None => "-",
        };
        println!(
            "{:<24} {:>10.1} {:>9.2} {:>11.2} {:>9}",
            algo.name(),
            t.time_s * 1e6,
            t.tflops_effective,
            conv.workspace_bytes(algo) as f64 / 1e6,
            v
        );
    }
}
