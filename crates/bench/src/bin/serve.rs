//! `serve` — batched-inference serving on the simulated devices (ISSUE 7).
//!
//! Drives the `serve` crate end-to-end: generates an open-loop MMPP-2
//! request stream over the ResNet layer mix, builds (or warm-loads) a
//! per-shape execution plan for each device via the multi-wave device
//! model, then plays the stream against each device's pool twice — a
//! *cold* phase charging the plan's modeled build cost (probe runs +
//! tuning evaluations) before the first dispatch, and a *warm* phase
//! charging only a cache lookup. The tracked `BENCH_serve.json` reports
//! p50/p99/mean latency, per-device throughput, SLO misses, batch fill and
//! per-class time-to-first-dispatch for every (device, phase).
//!
//! Plans persist in the simcache store (`--plan-dir`, default
//! `target/simcache/`) under content addresses that include the timing
//! model version, so a host-side rerun skips probing and tuning entirely
//! ("tune once, serve forever"); an LRU index with `--plan-cap` bounds how
//! many plans a device keeps. Crucially, the *modeled* cold/warm split
//! keeps the JSON byte-identical whatever the host cache held — host-side
//! hits and misses are stderr chatter, never results.
//!
//! Determinism: the whole run is a pure function of the flags. `--jobs`
//! only shards the per-device work across threads (results merge in
//! registration order) and is excluded from every digest, which is what
//! `bench/tests/serve_determinism.rs` checks byte-for-byte.
//!
//! Telemetry (ISSUE 8): `--events PATH` writes the request-lifecycle
//! flight-recorder stream as JSON lines (one object per event, `device` and
//! `phase` context fields on every line; replay with `servemon --log PATH`),
//! and `--pool-trace PATH` writes the pool timeline as Chrome trace-event
//! JSON (one process per device×phase, one lane per pool slot, launch
//! groups as complete events, deadline misses as instants). Recording is on
//! only when one of the two flags is given; the off path is bit-identical
//! and the `--json` report never depends on it (`serve_telemetry.rs` pins
//! both, across `--jobs`).
//!
//! Flags: `--seed S` (default 2020), `--rate RPS` (default 20000),
//! `--burst F` (default 4), `--slo-ms MS` (default 50),
//! `--duration-ms MS` (default 1000), `--pool P` (devices per scenario,
//! default 2), `--tune-budget B` (anneal steps, default 12),
//! `--jobs N` (default all cores), `--json PATH` (default
//! `BENCH_serve.json`), `--plan-dir DIR`, `--plan-cap N` (0 = unlimited),
//! `--no-plan-cache`, `--events PATH`, `--pool-trace PATH`, `--tick-us N`
//! (gauge period, default 1000), `--smoke` (tiny shapes, short stream,
//! asserts).

use bench::json::{obj, Json};
use bench::report::{flag_value, Report};
use bench::simcache::{SimStore, Store};
use bench::trace::ChromeTrace;
use bench::Table;
use gpusim::DeviceSpec;
use serve::engine::{run_recorded, EngineConfig, RunStats};
use serve::plan::{Plan, PlanCache, PlanStorage, Planner, PLAN_LOOKUP_NS};
use serve::telemetry::{Telemetry, TelemetryEvent, TelemetryOptions};
use serve::traffic::{generate, Request, ShapeClass, TrafficConfig};
use std::collections::HashMap;

struct Config {
    seed: u64,
    rate_rps: f64,
    burst: f64,
    slo_ns: u64,
    duration_ns: u64,
    pool: usize,
    tune_budget: u64,
    jobs: usize,
    plan_dir: Option<String>,
    plan_cap: usize,
    use_plan_cache: bool,
    smoke: bool,
    json: Option<String>,
    events: Option<String>,
    pool_trace: Option<String>,
    tick_ns: u64,
}

impl Config {
    /// The flight recorder runs only when an export asked for it; otherwise
    /// the engine takes the bit-identical zero-cost off path.
    fn telemetry(&self) -> TelemetryOptions {
        if self.events.is_none() && self.pool_trace.is_none() {
            return TelemetryOptions::off();
        }
        TelemetryOptions {
            tick_ns: self.tick_ns,
            ..TelemetryOptions::on()
        }
    }
}

fn parse_args() -> Config {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let f = |flag: &str, dflt: f64| -> f64 {
        flag_value(&args, flag).map_or(dflt, |v| v.parse().expect("numeric flag"))
    };
    let cfg = Config {
        seed: f("--seed", 2020.0) as u64,
        rate_rps: f("--rate", if smoke { 400_000.0 } else { 20_000.0 }),
        burst: f("--burst", 4.0),
        slo_ns: (f("--slo-ms", if smoke { 2.0 } else { 50.0 }) * 1e6) as u64,
        duration_ns: (f("--duration-ms", if smoke { 20.0 } else { 1000.0 }) * 1e6) as u64,
        pool: f("--pool", 2.0) as usize,
        tune_budget: f("--tune-budget", if smoke { 6.0 } else { 12.0 }) as u64,
        jobs: flag_value(&args, "--jobs").map_or_else(
            || std::thread::available_parallelism().map_or(1, |n| n.get()),
            |v| v.parse().expect("--jobs N"),
        ),
        plan_dir: flag_value(&args, "--plan-dir"),
        plan_cap: f("--plan-cap", 0.0) as usize,
        use_plan_cache: !args.iter().any(|a| a == "--no-plan-cache"),
        smoke,
        json: flag_value(&args, "--json").or_else(|| Some("BENCH_serve.json".to_string())),
        events: flag_value(&args, "--events"),
        pool_trace: flag_value(&args, "--pool-trace"),
        tick_ns: (f("--tick-us", 1000.0) * 1e3) as u64,
    };
    assert!(cfg.pool >= 1, "--pool must be >= 1");
    assert!(cfg.tick_ns > 0, "--tick-us must be positive");
    cfg
}

/// Outcome of one device's full pipeline: plans plus cold and warm runs.
struct DeviceOutcome {
    device: &'static str,
    plans: Vec<Plan>,
    host_hits: u64,
    host_misses: u64,
    evictions: u64,
    cold: RunStats,
    warm: RunStats,
    /// Flight recorders for the two phases (disabled unless `--events` or
    /// `--pool-trace` asked for recording).
    cold_tel: Telemetry,
    warm_tel: Telemetry,
}

fn run_device(
    dev: &DeviceSpec,
    cfg: &Config,
    classes: &[ShapeClass],
    batch_sizes: &[u32],
    requests: &[Request],
) -> DeviceOutcome {
    let mut planner = Planner::new(dev.clone(), batch_sizes.to_vec());
    planner.tune_budget = cfg.tune_budget;
    planner.tune_seed = cfg.seed;
    // Bake the probe-time traffic assumption into each plan so the drift
    // tracker has a reference (observed per-class EWMA vs this rate).
    planner.mix = Some((cfg.rate_rps, classes.iter().map(|c| c.weight).sum()));

    // Each worker opens its own store handle on the shared directory; the
    // content-addressed discipline makes concurrent same-key writes benign.
    let store;
    let mem;
    let storage: &dyn PlanStorage = if cfg.use_plan_cache {
        store =
            SimStore(Store::new(cfg.plan_dir.clone().unwrap_or_else(|| {
                Store::default_dir().to_string_lossy().into_owned()
            })));
        &store
    } else {
        mem = serve::MemStorage::new();
        &mem
    };
    let mut cache = PlanCache::new(storage, dev.name, cfg.plan_cap);
    let mut plans = Vec::new();
    for class in classes {
        let (plan, hit) = planner.acquire(&mut cache, class);
        eprintln!(
            "[serve] {}/{}: {} ({}), build cost {:.3} ms{}",
            dev.name,
            class.name,
            plan.variants.last().unwrap().algo,
            if hit { "cached" } else { "built" },
            plan.build_cost_ns as f64 / 1e6,
            plan.tuned.as_ref().map_or(String::new(), |t| format!(
                ", tuned {}→{} cycles",
                t.hand_cycles, t.tuned_cycles
            )),
        );
        plans.push(plan);
    }

    let mut engine_cfg = EngineConfig {
        slo_ns: cfg.slo_ns,
        pool: cfg.pool,
        warm: false,
    };
    let mut cold_tel = Telemetry::new(cfg.telemetry());
    let cold = run_recorded(&engine_cfg, classes, &plans, requests, &mut cold_tel);
    engine_cfg.warm = true;
    let mut warm_tel = Telemetry::new(cfg.telemetry());
    let warm = run_recorded(&engine_cfg, classes, &plans, requests, &mut warm_tel);
    DeviceOutcome {
        device: dev.name,
        plans,
        host_hits: cache.stats.hits,
        host_misses: cache.stats.misses,
        evictions: cache.stats.evictions,
        cold,
        warm,
        cold_tel,
        warm_tel,
    }
}

fn us(ns: u64) -> f64 {
    ns as f64 / 1e3
}

fn stats_metrics(s: &RunStats) -> Vec<(&'static str, Json)> {
    vec![
        ("requests", s.requests.into()),
        ("completed", s.completed.into()),
        ("p50_us", us(s.p50_ns).into()),
        ("p99_us", us(s.p99_ns).into()),
        ("p999_ns", s.p999_ns.into()),
        (
            "latency_hist",
            Json::Arr(
                s.histogram
                    .buckets()
                    .map(|(le, count)| obj(&[("le_ns", le.into()), ("count", count.into())]))
                    .collect(),
            ),
        ),
        ("mean_us", us(s.mean_ns).into()),
        ("max_us", us(s.max_ns).into()),
        ("makespan_ms", (s.makespan_ns as f64 / 1e6).into()),
        (
            "throughput_rps_per_device",
            s.throughput_rps_per_device.into(),
        ),
        ("slo_misses", s.slo_misses.into()),
        ("batches", s.batches.into()),
        ("mean_fill", s.mean_fill.into()),
    ]
}

fn main() {
    let cfg = parse_args();
    let (classes, batch_sizes): (Vec<ShapeClass>, Vec<u32>) = if cfg.smoke {
        (ShapeClass::smoke_mix(), vec![32, 64])
    } else {
        (
            ShapeClass::resnet_mix(),
            wino_core::resnet::BATCH_SIZES
                .iter()
                .map(|&n| n as u32)
                .collect(),
        )
    };
    let traffic = TrafficConfig {
        seed: cfg.seed,
        duration_ns: cfg.duration_ns,
        rate_rps: cfg.rate_rps,
        burst_factor: cfg.burst,
        ..Default::default()
    };
    let requests = generate(&traffic, &classes);
    eprintln!(
        "[serve] {} requests over {:.0} ms ({} classes, burst {}x)",
        requests.len(),
        cfg.duration_ns as f64 / 1e6,
        classes.len(),
        cfg.burst,
    );

    let devices = [DeviceSpec::v100(), DeviceSpec::rtx2070()];
    // Shard per-device pipelines across worker threads; merge in
    // registration order so output never depends on scheduling.
    let outcomes: Vec<DeviceOutcome> = if cfg.jobs >= 2 {
        let (cfg, classes, batch_sizes, requests) = (&cfg, &classes, &batch_sizes, &requests);
        std::thread::scope(|s| {
            let handles: Vec<_> = devices
                .iter()
                .map(|dev| s.spawn(move || run_device(dev, cfg, classes, batch_sizes, requests)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    } else {
        devices
            .iter()
            .map(|dev| run_device(dev, &cfg, &classes, &batch_sizes, &requests))
            .collect()
    };

    let mut report = Report::to_path("serve", cfg.json.clone());
    let mut table = Table::new(&[
        "device", "phase", "p50 us", "p99 us", "mean us", "rps/dev", "miss", "fill", "ttfd ms",
    ]);
    for o in &outcomes {
        eprintln!(
            "[serve] {}: plan cache {} hits / {} misses / {} evictions (host side)",
            o.device, o.host_hits, o.host_misses, o.evictions
        );
        for (phase, s) in [("cold", &o.cold), ("warm", &o.warm)] {
            let ttfd_ms = s
                .classes
                .iter()
                .map(|c| c.time_to_first_dispatch_ns as f64 / 1e6)
                .sum::<f64>()
                / s.classes.len() as f64;
            table.row(vec![
                o.device.to_string(),
                phase.to_string(),
                format!("{:.1}", us(s.p50_ns)),
                format!("{:.1}", us(s.p99_ns)),
                format!("{:.1}", us(s.mean_ns)),
                format!("{:.0}", s.throughput_rps_per_device),
                format!("{}", s.slo_misses),
                format!("{:.2}", s.mean_fill),
                format!("{ttfd_ms:.3}"),
            ]);
            let mut metrics = stats_metrics(s);
            metrics.push((
                "ttfd_per_class_us",
                Json::Arr(
                    s.classes
                        .iter()
                        .map(|c| {
                            obj(&[
                                ("class", c.name.as_str().into()),
                                ("requests", c.requests.into()),
                                ("ttfd_us", us(c.time_to_first_dispatch_ns).into()),
                                ("plan_charge_us", us(c.plan_charge_ns).into()),
                            ])
                        })
                        .collect(),
                ),
            ));
            report.add(
                o.device,
                &[
                    ("phase", phase.into()),
                    ("pool", cfg.pool.into()),
                    ("slo_ms", (cfg.slo_ns as f64 / 1e6).into()),
                    ("rate_rps", cfg.rate_rps.into()),
                    ("burst", cfg.burst.into()),
                    ("seed", cfg.seed.into()),
                    ("smoke", cfg.smoke.into()),
                ],
                &metrics,
            );
        }
        for p in &o.plans {
            report.add(
                o.device,
                &[("phase", "plan".into()), ("class", p.class.as_str().into())],
                &[
                    ("bound", p.bound.as_str().into()),
                    ("break_even_k", p.break_even_k.into()),
                    ("build_cost_us", us(p.build_cost_ns).into()),
                    ("tuned", p.tuned.is_some().into()),
                    (
                        "tuned_schedule",
                        match &p.tuned {
                            Some(t) => obj(&[
                                ("n", t.n.into()),
                                ("source", t.source.as_str().into()),
                                ("params", t.params.as_str().into()),
                                ("hand_cycles", t.hand_cycles.into()),
                                ("tuned_cycles", t.tuned_cycles.into()),
                                ("schedule_digest", t.schedule_digest.as_str().into()),
                            ]),
                            None => Json::Null,
                        },
                    ),
                    (
                        "variants",
                        Json::Arr(
                            p.variants
                                .iter()
                                .map(|v| {
                                    obj(&[
                                        ("n", v.n.into()),
                                        ("algo", v.algo.as_str().into()),
                                        ("service_us", us(v.service_ns).into()),
                                        ("tflops", v.tflops.into()),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ],
            );
        }
    }
    table.print();
    report.finish();

    if let Some(path) = &cfg.events {
        // One JSON-lines log for the whole run: outcomes in registration
        // order, cold then warm within each, every line context-tagged.
        let mut log = String::new();
        for o in &outcomes {
            for (phase, tel) in [("cold", &o.cold_tel), ("warm", &o.warm_tel)] {
                log.push_str(&tel.to_jsonl(&[("device", o.device), ("phase", phase)]));
            }
        }
        std::fs::write(path, &log)
            .unwrap_or_else(|e| panic!("failed to write --events {path}: {e}"));
        eprintln!(
            "[serve] wrote {} telemetry events to {path}",
            log.lines().count()
        );
    }

    if let Some(path) = &cfg.pool_trace {
        let tr = pool_trace(&outcomes, cfg.pool);
        std::fs::write(path, tr.render())
            .unwrap_or_else(|e| panic!("failed to write --pool-trace {path}: {e}"));
        eprintln!(
            "[serve] wrote {} pool-timeline events to {path}",
            tr.events()
        );
    }

    if cfg.smoke {
        for o in &outcomes {
            assert_eq!(o.cold.completed, o.cold.requests, "cold phase must drain");
            assert_eq!(o.warm.completed, o.warm.requests, "warm phase must drain");
            for (c, w) in o.cold.classes.iter().zip(&o.warm.classes) {
                assert!(
                    w.time_to_first_dispatch_ns < c.time_to_first_dispatch_ns,
                    "{}/{}: warm ttfd {} must beat cold {}",
                    o.device,
                    c.name,
                    w.time_to_first_dispatch_ns,
                    c.time_to_first_dispatch_ns
                );
                assert_eq!(w.plan_charge_ns, PLAN_LOOKUP_NS);
            }
            assert!(
                o.plans.iter().all(|p| p.verify()),
                "every plan must pass warm-start verification"
            );
            // When the flight recorder ran, its stream must reconcile
            // exactly with the engine's aggregate stats.
            for (phase, s, tel) in [
                ("cold", &o.cold, &o.cold_tel),
                ("warm", &o.warm, &o.warm_tel),
            ] {
                if !tel.enabled() {
                    continue;
                }
                let who = format!("{}/{}", o.device, phase);
                assert_eq!(tel.spans().len() as u64, s.completed, "{who}: span count");
                let misses = tel.spans().iter().filter(|sp| sp.miss).count() as u64;
                assert_eq!(misses, s.slo_misses, "{who}: miss count");
                assert_eq!(tel.batch_count(), s.batches, "{who}: batch count");
                let mut hist = serve::LatencyHistogram::new();
                for sp in tel.spans() {
                    hist.record(sp.complete_ns - sp.arrival_ns);
                }
                assert_eq!(hist, s.histogram, "{who}: histogram");
                let windowed: u64 = tel.burn_series().iter().map(|w| w.completed).sum();
                assert_eq!(windowed, s.completed, "{who}: burn-window coverage");
            }
        }
        eprintln!("[serve] smoke OK");
    }
}

/// Assemble the Chrome-trace pool timeline: one process per
/// `(device, phase)` row, one lane per pool slot, each launch group a
/// complete event on the device lane it ran on, each deadline miss an
/// instant on that same lane.
fn pool_trace(outcomes: &[DeviceOutcome], pool: usize) -> ChromeTrace {
    let mut tr = ChromeTrace::new();
    let mut pid = 0u64;
    for o in outcomes {
        for (phase, tel) in [("cold", &o.cold_tel), ("warm", &o.warm_tel)] {
            pid += 1;
            tr.process_name(pid, &format!("{} ({phase})", o.device));
            for lane in 0..pool as u64 {
                tr.thread_name(pid, lane, &format!("device {lane}"));
            }
            let mut sink = serve::MemSink::default();
            tel.drain_into(&mut sink);
            // Completions only carry their batch id; recover the lane from
            // the batch's dispatch record.
            let mut batch_lane: HashMap<u64, u64> = HashMap::new();
            let class_name = |c: usize| tel.class_names().get(c).map_or("?", |s| s.as_str());
            for (_, ev) in &sink.events {
                match *ev {
                    TelemetryEvent::Dispatch {
                        t,
                        batch,
                        class,
                        device,
                        count,
                        batch_n,
                        service_ns,
                    } => {
                        batch_lane.insert(batch, device as u64);
                        let algo = o.plans[class]
                            .variants
                            .iter()
                            .find(|v| v.n == batch_n)
                            .map_or("?", |v| v.algo.as_str());
                        tr.complete(
                            pid,
                            device as u64,
                            class_name(class),
                            t,
                            service_ns,
                            &[
                                ("batch", batch.into()),
                                ("algo", algo.into()),
                                ("batch_n", batch_n.into()),
                                ("count", count.into()),
                            ],
                        );
                    }
                    TelemetryEvent::Complete {
                        t,
                        id,
                        class,
                        batch,
                        miss: true,
                        cause,
                        ..
                    } => {
                        let lane = batch_lane.get(&batch).copied().unwrap_or(0);
                        tr.instant(
                            pid,
                            lane,
                            "miss",
                            t,
                            &[
                                ("id", id.into()),
                                ("class", class_name(class).into()),
                                ("cause", cause.name().into()),
                            ],
                        );
                    }
                    _ => {}
                }
            }
        }
    }
    tr
}
