//! `serve` — batched-inference serving on the simulated devices (ISSUE 7).
//!
//! Drives the `serve` crate end-to-end: generates an open-loop MMPP-2
//! request stream over the ResNet layer mix, builds (or warm-loads) a
//! per-shape execution plan for each device via the multi-wave device
//! model, then plays the stream against each device's pool twice — a
//! *cold* phase charging the plan's modeled build cost (probe runs +
//! tuning evaluations) before the first dispatch, and a *warm* phase
//! charging only a cache lookup. The tracked `BENCH_serve.json` reports
//! p50/p99/mean latency, per-device throughput, SLO misses, batch fill and
//! per-class time-to-first-dispatch for every (device, phase).
//!
//! Plans persist in the simcache store (`--plan-dir`, default
//! `target/simcache/`) under content addresses that include the timing
//! model version, so a host-side rerun skips probing and tuning entirely
//! ("tune once, serve forever"); an LRU index with `--plan-cap` bounds how
//! many plans a device keeps. Crucially, the *modeled* cold/warm split
//! keeps the JSON byte-identical whatever the host cache held — host-side
//! hits and misses are stderr chatter, never results.
//!
//! Determinism: the whole run is a pure function of the flags. `--jobs`
//! only shards the per-device work across threads (results merge in
//! registration order) and is excluded from every digest, which is what
//! `bench/tests/serve_determinism.rs` checks byte-for-byte.
//!
//! Flags: `--seed S` (default 2020), `--rate RPS` (default 20000),
//! `--burst F` (default 4), `--slo-ms MS` (default 50),
//! `--duration-ms MS` (default 1000), `--pool P` (devices per scenario,
//! default 2), `--tune-budget B` (anneal steps, default 12),
//! `--jobs N` (default all cores), `--json PATH` (default
//! `BENCH_serve.json`), `--plan-dir DIR`, `--plan-cap N` (0 = unlimited),
//! `--no-plan-cache`, `--smoke` (tiny shapes, short stream, asserts).

use bench::json::{obj, Json};
use bench::report::{flag_value, Report};
use bench::simcache::{CacheKey, Store};
use bench::Table;
use gpusim::DeviceSpec;
use serve::engine::{run, EngineConfig, RunStats};
use serve::plan::{Plan, PlanCache, PlanStorage, Planner, PLAN_LOOKUP_NS};
use serve::traffic::{generate, Request, ShapeClass, TrafficConfig};

/// `simcache::Store` as a [`PlanStorage`]: plan text rides in a JSON
/// string under the plan's content address, so plans share the directory
/// (and the atomic write-and-rename discipline) with every sweep result.
struct SimStore(Store);

impl PlanStorage for SimStore {
    fn load(&self, key: &str) -> Option<String> {
        match self.0.load(&CacheKey::new(key.to_string())) {
            Some(Json::Str(s)) => Some(s),
            _ => None,
        }
    }

    fn store(&self, key: &str, value: &str) {
        self.0.store(
            &CacheKey::new(key.to_string()),
            &Json::Str(value.to_string()),
        );
    }

    fn remove(&self, key: &str) {
        self.0.remove(&CacheKey::new(key.to_string()));
    }
}

struct Config {
    seed: u64,
    rate_rps: f64,
    burst: f64,
    slo_ns: u64,
    duration_ns: u64,
    pool: usize,
    tune_budget: u64,
    jobs: usize,
    plan_dir: Option<String>,
    plan_cap: usize,
    use_plan_cache: bool,
    smoke: bool,
    json: Option<String>,
}

fn parse_args() -> Config {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let f = |flag: &str, dflt: f64| -> f64 {
        flag_value(&args, flag).map_or(dflt, |v| v.parse().expect("numeric flag"))
    };
    let cfg = Config {
        seed: f("--seed", 2020.0) as u64,
        rate_rps: f("--rate", if smoke { 400_000.0 } else { 20_000.0 }),
        burst: f("--burst", 4.0),
        slo_ns: (f("--slo-ms", if smoke { 2.0 } else { 50.0 }) * 1e6) as u64,
        duration_ns: (f("--duration-ms", if smoke { 20.0 } else { 1000.0 }) * 1e6) as u64,
        pool: f("--pool", 2.0) as usize,
        tune_budget: f("--tune-budget", if smoke { 6.0 } else { 12.0 }) as u64,
        jobs: flag_value(&args, "--jobs").map_or_else(
            || std::thread::available_parallelism().map_or(1, |n| n.get()),
            |v| v.parse().expect("--jobs N"),
        ),
        plan_dir: flag_value(&args, "--plan-dir"),
        plan_cap: f("--plan-cap", 0.0) as usize,
        use_plan_cache: !args.iter().any(|a| a == "--no-plan-cache"),
        smoke,
        json: flag_value(&args, "--json").or_else(|| Some("BENCH_serve.json".to_string())),
    };
    assert!(cfg.pool >= 1, "--pool must be >= 1");
    cfg
}

/// Outcome of one device's full pipeline: plans plus cold and warm runs.
struct DeviceOutcome {
    device: &'static str,
    plans: Vec<Plan>,
    host_hits: u64,
    host_misses: u64,
    evictions: u64,
    cold: RunStats,
    warm: RunStats,
}

fn run_device(
    dev: &DeviceSpec,
    cfg: &Config,
    classes: &[ShapeClass],
    batch_sizes: &[u32],
    requests: &[Request],
) -> DeviceOutcome {
    let mut planner = Planner::new(dev.clone(), batch_sizes.to_vec());
    planner.tune_budget = cfg.tune_budget;
    planner.tune_seed = cfg.seed;

    // Each worker opens its own store handle on the shared directory; the
    // content-addressed discipline makes concurrent same-key writes benign.
    let store;
    let mem;
    let storage: &dyn PlanStorage = if cfg.use_plan_cache {
        store =
            SimStore(Store::new(cfg.plan_dir.clone().unwrap_or_else(|| {
                Store::default_dir().to_string_lossy().into_owned()
            })));
        &store
    } else {
        mem = serve::MemStorage::new();
        &mem
    };
    let mut cache = PlanCache::new(storage, dev.name, cfg.plan_cap);
    let mut plans = Vec::new();
    for class in classes {
        let (plan, hit) = planner.acquire(&mut cache, class);
        eprintln!(
            "[serve] {}/{}: {} ({}), build cost {:.3} ms{}",
            dev.name,
            class.name,
            plan.variants.last().unwrap().algo,
            if hit { "cached" } else { "built" },
            plan.build_cost_ns as f64 / 1e6,
            plan.tuned.as_ref().map_or(String::new(), |t| format!(
                ", tuned {}→{} cycles",
                t.hand_cycles, t.tuned_cycles
            )),
        );
        plans.push(plan);
    }

    let mut engine_cfg = EngineConfig {
        slo_ns: cfg.slo_ns,
        pool: cfg.pool,
        warm: false,
    };
    let cold = run(&engine_cfg, classes, &plans, requests);
    engine_cfg.warm = true;
    let warm = run(&engine_cfg, classes, &plans, requests);
    DeviceOutcome {
        device: dev.name,
        plans,
        host_hits: cache.stats.hits,
        host_misses: cache.stats.misses,
        evictions: cache.stats.evictions,
        cold,
        warm,
    }
}

fn us(ns: u64) -> f64 {
    ns as f64 / 1e3
}

fn stats_metrics(s: &RunStats) -> Vec<(&'static str, Json)> {
    vec![
        ("requests", s.requests.into()),
        ("completed", s.completed.into()),
        ("p50_us", us(s.p50_ns).into()),
        ("p99_us", us(s.p99_ns).into()),
        ("mean_us", us(s.mean_ns).into()),
        ("max_us", us(s.max_ns).into()),
        ("makespan_ms", (s.makespan_ns as f64 / 1e6).into()),
        (
            "throughput_rps_per_device",
            s.throughput_rps_per_device.into(),
        ),
        ("slo_misses", s.slo_misses.into()),
        ("batches", s.batches.into()),
        ("mean_fill", s.mean_fill.into()),
    ]
}

fn main() {
    let cfg = parse_args();
    let (classes, batch_sizes): (Vec<ShapeClass>, Vec<u32>) = if cfg.smoke {
        (ShapeClass::smoke_mix(), vec![32, 64])
    } else {
        (
            ShapeClass::resnet_mix(),
            wino_core::resnet::BATCH_SIZES
                .iter()
                .map(|&n| n as u32)
                .collect(),
        )
    };
    let traffic = TrafficConfig {
        seed: cfg.seed,
        duration_ns: cfg.duration_ns,
        rate_rps: cfg.rate_rps,
        burst_factor: cfg.burst,
        ..Default::default()
    };
    let requests = generate(&traffic, &classes);
    eprintln!(
        "[serve] {} requests over {:.0} ms ({} classes, burst {}x)",
        requests.len(),
        cfg.duration_ns as f64 / 1e6,
        classes.len(),
        cfg.burst,
    );

    let devices = [DeviceSpec::v100(), DeviceSpec::rtx2070()];
    // Shard per-device pipelines across worker threads; merge in
    // registration order so output never depends on scheduling.
    let outcomes: Vec<DeviceOutcome> = if cfg.jobs >= 2 {
        let (cfg, classes, batch_sizes, requests) = (&cfg, &classes, &batch_sizes, &requests);
        std::thread::scope(|s| {
            let handles: Vec<_> = devices
                .iter()
                .map(|dev| s.spawn(move || run_device(dev, cfg, classes, batch_sizes, requests)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    } else {
        devices
            .iter()
            .map(|dev| run_device(dev, &cfg, &classes, &batch_sizes, &requests))
            .collect()
    };

    let mut report = Report::to_path("serve", cfg.json.clone());
    let mut table = Table::new(&[
        "device", "phase", "p50 us", "p99 us", "mean us", "rps/dev", "miss", "fill", "ttfd ms",
    ]);
    for o in &outcomes {
        eprintln!(
            "[serve] {}: plan cache {} hits / {} misses / {} evictions (host side)",
            o.device, o.host_hits, o.host_misses, o.evictions
        );
        for (phase, s) in [("cold", &o.cold), ("warm", &o.warm)] {
            let ttfd_ms = s
                .classes
                .iter()
                .map(|c| c.time_to_first_dispatch_ns as f64 / 1e6)
                .sum::<f64>()
                / s.classes.len() as f64;
            table.row(vec![
                o.device.to_string(),
                phase.to_string(),
                format!("{:.1}", us(s.p50_ns)),
                format!("{:.1}", us(s.p99_ns)),
                format!("{:.1}", us(s.mean_ns)),
                format!("{:.0}", s.throughput_rps_per_device),
                format!("{}", s.slo_misses),
                format!("{:.2}", s.mean_fill),
                format!("{ttfd_ms:.3}"),
            ]);
            let mut metrics = stats_metrics(s);
            metrics.push((
                "ttfd_per_class_us",
                Json::Arr(
                    s.classes
                        .iter()
                        .map(|c| {
                            obj(&[
                                ("class", c.name.as_str().into()),
                                ("requests", c.requests.into()),
                                ("ttfd_us", us(c.time_to_first_dispatch_ns).into()),
                                ("plan_charge_us", us(c.plan_charge_ns).into()),
                            ])
                        })
                        .collect(),
                ),
            ));
            report.add(
                o.device,
                &[
                    ("phase", phase.into()),
                    ("pool", cfg.pool.into()),
                    ("slo_ms", (cfg.slo_ns as f64 / 1e6).into()),
                    ("rate_rps", cfg.rate_rps.into()),
                    ("burst", cfg.burst.into()),
                    ("seed", cfg.seed.into()),
                    ("smoke", cfg.smoke.into()),
                ],
                &metrics,
            );
        }
        for p in &o.plans {
            report.add(
                o.device,
                &[("phase", "plan".into()), ("class", p.class.as_str().into())],
                &[
                    ("bound", p.bound.as_str().into()),
                    ("break_even_k", p.break_even_k.into()),
                    ("build_cost_us", us(p.build_cost_ns).into()),
                    ("tuned", p.tuned.is_some().into()),
                    (
                        "variants",
                        Json::Arr(
                            p.variants
                                .iter()
                                .map(|v| {
                                    obj(&[
                                        ("n", v.n.into()),
                                        ("algo", v.algo.as_str().into()),
                                        ("service_us", us(v.service_ns).into()),
                                        ("tflops", v.tflops.into()),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ],
            );
        }
    }
    table.print();
    report.finish();

    if cfg.smoke {
        for o in &outcomes {
            assert_eq!(o.cold.completed, o.cold.requests, "cold phase must drain");
            assert_eq!(o.warm.completed, o.warm.requests, "warm phase must drain");
            for (c, w) in o.cold.classes.iter().zip(&o.warm.classes) {
                assert!(
                    w.time_to_first_dispatch_ns < c.time_to_first_dispatch_ns,
                    "{}/{}: warm ttfd {} must beat cold {}",
                    o.device,
                    c.name,
                    w.time_to_first_dispatch_ns,
                    c.time_to_first_dispatch_ns
                );
                assert_eq!(w.plan_charge_ns, PLAN_LOOKUP_NS);
            }
            assert!(
                o.plans.iter().all(|p| p.verify()),
                "every plan must pass warm-start verification"
            );
        }
        eprintln!("[serve] smoke OK");
    }
}
