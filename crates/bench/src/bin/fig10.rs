//! Figure 10: Speed-of-Light (FP32-pipe utilization) on RTX 2070, whole
//! kernel ("Total") and main loop. Paper: main loop 87.5-93%, total ≥ ~80%.

use bench::report::Report;
use bench::{configs, label, time_sweep, Table};
use gpusim::DeviceSpec;
use wino_core::{Algo, Conv};

fn main() {
    run(DeviceSpec::rtx2070(), "Figure 10", "RTX 2070", "fig10");
}

pub fn run(dev: DeviceSpec, fig: &str, name: &str, experiment: &str) {
    println!("{fig}: Speed of Light (simulated {name})");
    println!("Paper: main loop up to ~93%, total above ~80% for large batch\n");
    let points = configs()
        .into_iter()
        .map(|(layer, n)| (Conv::new(layer.problem(n), dev.clone()), Algo::OursFused))
        .collect();
    let mut timings = time_sweep(experiment, points).into_iter();

    let mut report = Report::from_args(experiment);
    let mut t = Table::new(&["layer", "Total %", "Main loop %"]);
    for (layer, n) in configs() {
        let timing = timings.next().unwrap();
        let k = timing.kernel.expect("fused kernel timing");
        t.row(vec![
            label(&layer, n),
            format!("{:.1}", k.sol_total_pct),
            format!("{:.1}", k.sol_pct),
        ]);
        report.add(
            dev.name,
            &[("layer", layer.name.into()), ("n", n.into())],
            &[
                ("sol_total_pct", k.sol_total_pct.into()),
                ("sol_mainloop_pct", k.sol_pct.into()),
            ],
        );
    }
    t.print();

    if bench::metrics::wanted() {
        let points = configs()
            .into_iter()
            .map(|(layer, n)| (Conv::new(layer.problem(n), dev.clone()), Algo::OursFused))
            .collect();
        let cfgs = configs();
        bench::metrics::add_conv_metrics_records(
            &mut report,
            &format!("{experiment}-metrics"),
            points,
            |i, a| {
                let (layer, n) = &cfgs[i];
                (
                    dev.name.to_string(),
                    vec![
                        ("layer", layer.name.into()),
                        ("n", (*n).into()),
                        ("algo", a.name().into()),
                    ],
                )
            },
        );
    }
    report.finish();
}
