//! Ablations of the design choices DESIGN.md calls out:
//!  * P2R predicate packing vs per-iteration mask recomputation (§3.5);
//!  * cache block size bk=64 vs bk=32 with everything else equal (§3.3);
//!  * yield/LDG/STS strategy deltas on V100 (complementing Figs. 7-9).

use bench::report::Report;
use bench::Table;
use gpusim::DeviceSpec;
use kernels::{LdgStrategy, StsStrategy, YieldStrategy};
use wino_core::{Conv, ConvProblem};

fn main() {
    let dev = DeviceSpec::rtx2070();
    println!(
        "Ablation study (simulated {}, Conv3N64: C=K=128, 28x28, N=64)\n",
        dev.name
    );
    let p = ConvProblem::resnet3x3(64, 128, 28, 128);
    let conv = Conv::new(p, dev.clone());

    let mut report = Report::from_args("ablation");
    let base = conv.ours_config();
    let mut t = Table::new(&["variant", "main-loop TFLOPS", "vs base"]);
    let (_, base_tf) = conv.time_fused_mainloop(base);
    t.row(vec![
        "base (bk=64, P2R, Natural, LDG8, STS6)".into(),
        format!("{base_tf:.2}"),
        "1.000x".into(),
    ]);
    let mut record = |variant: &str, tf: f64| {
        report.add(
            dev.name,
            &[
                ("layer", "Conv3".into()),
                ("n", 64usize.into()),
                ("variant", variant.into()),
            ],
            &[
                ("mainloop_tflops", tf.into()),
                ("vs_base", (tf / base_tf).into()),
            ],
        );
    };
    record("base", base_tf);

    let mut v = base;
    v.use_p2r = false;
    let (_, tf) = conv.time_fused_mainloop(v);
    t.row(vec![
        "no P2R (recompute masks in loop)".into(),
        format!("{tf:.2}"),
        format!("{:.3}x", tf / base_tf),
    ]);
    record("no_p2r", tf);

    let mut v = base;
    v.bk = 32;
    v.smem_override = Some(48 * 1024);
    let (_, tf) = conv.time_fused_mainloop(v);
    t.row(vec![
        "bk=32 (halved cache block)".into(),
        format!("{tf:.2}"),
        format!("{:.3}x", tf / base_tf),
    ]);
    record("bk32", tf);

    let mut v = base;
    v.yield_strategy = YieldStrategy::Cudnn;
    let (_, tf) = conv.time_fused_mainloop(v);
    t.row(vec![
        "yield every 7 (cuDNN)".into(),
        format!("{tf:.2}"),
        format!("{:.3}x", tf / base_tf),
    ]);
    record("yield_cudnn", tf);

    let mut v = base;
    v.ldg = LdgStrategy::Ldg2;
    let (_, tf) = conv.time_fused_mainloop(v);
    t.row(vec![
        "LDG2".into(),
        format!("{tf:.2}"),
        format!("{:.3}x", tf / base_tf),
    ]);
    record("ldg2", tf);

    let mut v = base;
    v.sts = StsStrategy::Sts2;
    let (_, tf) = conv.time_fused_mainloop(v);
    t.row(vec![
        "STS2".into(),
        format!("{tf:.2}"),
        format!("{:.3}x", tf / base_tf),
    ]);
    record("sts2", tf);

    // §8.4 port: same kernel, NCHW input partitioning — quantifies what the
    // §4.2 CHWN layout choice buys.
    let v = kernels::FusedConfig::ours_nchw(128, 28, 28, 64, 128);
    let (_, tf) = conv.time_fused_mainloop(kernels::FusedConfig {
        main_loop_only: true,
        ..v
    });
    t.row(vec![
        "NCHW input port (§8.4)".into(),
        format!("{tf:.2}"),
        format!("{:.3}x", tf / base_tf),
    ]);
    record("nchw_port", tf);

    // §8.3 fp16 port: bn = 64, half2 arithmetic — two element-FLOPs per
    // lane-instruction on the same FP32 pipe.
    let v = kernels::FusedConfig::ours_fp16(128, 28, 28, 128, 128);
    let (_, tf) = conv.time_fused_mainloop(kernels::FusedConfig {
        main_loop_only: true,
        ..v
    });
    t.row(vec![
        "fp16 port, bn=64 (§8.3)".into(),
        format!("{tf:.2}"),
        format!("{:.3}x", tf / base_tf),
    ]);
    record("fp16_port", tf);

    t.print();
    report.finish();
}
