//! Ablations of the design choices DESIGN.md calls out:
//!  * P2R predicate packing vs per-iteration mask recomputation (§3.5);
//!  * cache block size bk=64 vs bk=32 with everything else equal (§3.3);
//!  * yield/LDG/STS strategy deltas on V100 (complementing Figs. 7-9).

use bench::report::Report;
use bench::{mainloop_sweep, Table};
use gpusim::DeviceSpec;
use kernels::{LdgStrategy, StsStrategy, YieldStrategy};
use wino_core::{Conv, ConvProblem};

fn main() {
    let dev = DeviceSpec::rtx2070();
    println!(
        "Ablation study (simulated {}, Conv3N64: C=K=128, 28x28, N=64)\n",
        dev.name
    );
    let p = ConvProblem::resnet3x3(64, 128, 28, 128);
    let conv = Conv::new(p, dev.clone());

    let base = conv.ours_config();
    let variants = {
        let mut v_no_p2r = base;
        v_no_p2r.use_p2r = false;
        let mut v_bk32 = base;
        v_bk32.bk = 32;
        v_bk32.filter_ldg = kernels::FilterLdgWidth::W32;
        v_bk32.pipeline_depth = 1;
        v_bk32.smem_override = Some(48 * 1024);
        let mut v_yield = base;
        v_yield.yield_strategy = YieldStrategy::Cudnn;
        let mut v_ldg2 = base;
        v_ldg2.ldg = LdgStrategy::Ldg2;
        let mut v_sts2 = base;
        v_sts2.sts = StsStrategy::Sts2;
        // §8.4 port: same kernel, NCHW input partitioning — quantifies what
        // the §4.2 CHWN layout choice buys.
        let v_nchw = kernels::FusedConfig::ours_nchw(128, 28, 28, 64, 128);
        // §8.3 fp16 port: bn = 64, half2 arithmetic — two element-FLOPs per
        // lane-instruction on the same FP32 pipe.
        let v_fp16 = kernels::FusedConfig::ours_fp16(128, 28, 28, 128, 128);
        [
            base, v_no_p2r, v_bk32, v_yield, v_ldg2, v_sts2, v_nchw, v_fp16,
        ]
    };
    let points = variants
        .iter()
        .map(|&cfg| (Conv::new(p, dev.clone()), cfg))
        .collect();
    let mut tf_it = mainloop_sweep("ablation", points).into_iter();

    let mut report = Report::from_args("ablation");
    let mut t = Table::new(&["variant", "main-loop TFLOPS", "vs base"]);
    let base_tf = tf_it.next().unwrap();
    t.row(vec![
        "base (bk=64, P2R, Natural, LDG8, STS6)".into(),
        format!("{base_tf:.2}"),
        "1.000x".into(),
    ]);
    let mut record = |variant: &str, tf: f64| {
        report.add(
            dev.name,
            &[
                ("layer", "Conv3".into()),
                ("n", 64usize.into()),
                ("variant", variant.into()),
            ],
            &[
                ("mainloop_tflops", tf.into()),
                ("vs_base", (tf / base_tf).into()),
            ],
        );
    };
    record("base", base_tf);

    let rows = [
        ("no P2R (recompute masks in loop)", "no_p2r"),
        ("bk=32 (halved cache block)", "bk32"),
        ("yield every 7 (cuDNN)", "yield_cudnn"),
        ("LDG2", "ldg2"),
        ("STS2", "sts2"),
        ("NCHW input port (§8.4)", "nchw_port"),
        ("fp16 port, bn=64 (§8.3)", "fp16_port"),
    ];
    for (title, key) in rows {
        let tf = tf_it.next().unwrap();
        t.row(vec![
            title.into(),
            format!("{tf:.2}"),
            format!("{:.3}x", tf / base_tf),
        ]);
        record(key, tf);
    }

    t.print();

    if bench::metrics::wanted() {
        let keys = [
            "base",
            "no_p2r",
            "bk32",
            "yield_cudnn",
            "ldg2",
            "sts2",
            "nchw_port",
            "fp16_port",
        ];
        let points = variants
            .iter()
            .map(|&cfg| (Conv::new(p, dev.clone()), cfg))
            .collect();
        bench::metrics::add_mainloop_metrics_records(
            &mut report,
            "ablation-metrics",
            points,
            |i| {
                (
                    dev.name.to_string(),
                    vec![
                        ("layer", "Conv3".into()),
                        ("n", 64usize.into()),
                        ("variant", keys[i].into()),
                    ],
                )
            },
        );
    }
    report.finish();
}
