//! Figure 13: speedup of our kernel over every other cuDNN algorithm on
//! V100 (see fig12).

use gpusim::DeviceSpec;

#[path = "fig12.rs"]
#[allow(dead_code)]
mod fig12;

fn main() {
    fig12::run(DeviceSpec::v100(), "Figure 13", "fig13");
}
