//! Figure 2: roofline model of the Winograd steps on V100.

use bench::report::Report;
use gpusim::DeviceSpec;
use perfmodel::roofline::{
    attainable_tflops, attainable_tflops_vs, direct_conv_intensity, gemm_intensity, l2_bandwidth,
    ridge_intensity, WINOGRAD_STEPS,
};

fn main() {
    let dev = DeviceSpec::v100();
    let mut report = Report::from_args("fig2");
    println!(
        "Figure 2: V100 global-memory roofline (peak {:.1} TFLOPS, DRAM {:.0} GB/s, L2 {:.1} TB/s)",
        dev.peak_fp32_flops() / 1e12,
        dev.dram_bw / 1e9,
        l2_bandwidth(&dev) / 1e12
    );
    println!("ridge point: {:.1} ops/byte\n", ridge_intensity(&dev));

    println!(
        "{:<28} {:>10} {:>14} {:>14}",
        "kernel/step", "ops:byte", "DRAM-roof TF", "L2-roof TF"
    );
    let mut steps: Vec<(&str, f64)> = WINOGRAD_STEPS
        .iter()
        .map(|p| (p.name, p.intensity))
        .collect();
    steps.extend([
        ("batched GEMM (bk=32)", gemm_intensity(32.0)),
        ("batched GEMM (bk=64)", gemm_intensity(64.0)),
        ("direct conv (bk=64)", direct_conv_intensity(64.0)),
    ]);
    for (name, i) in steps {
        let dram_roof = attainable_tflops(&dev, i);
        let l2_roof = attainable_tflops_vs(&dev, i, l2_bandwidth(&dev));
        println!(
            "{:<28} {:>10.3} {:>14.2} {:>14.2}",
            name, i, dram_roof, l2_roof
        );
        report.add(
            dev.name,
            &[("step", name.into())],
            &[
                ("intensity_ops_per_byte", i.into()),
                ("dram_roof_tflops", dram_roof.into()),
                ("l2_roof_tflops", l2_roof.into()),
            ],
        );
    }
    println!(
        "\nbk=64 raises the GEMM step's intensity by {:.0}% over bk=32 (paper: +33%)",
        100.0 * (gemm_intensity(64.0) / gemm_intensity(32.0) - 1.0)
    );

    // Roofline curve samples (for replotting).
    println!("\nintensity_ops_per_byte, dram_roof_tflops, l2_roof_tflops");
    let mut i = 0.25;
    while i <= 64.0 {
        println!(
            "{:.3}, {:.3}, {:.3}",
            i,
            attainable_tflops(&dev, i),
            attainable_tflops_vs(&dev, i, l2_bandwidth(&dev))
        );
        i *= 2.0;
    }
    report.finish();
}
