//! Figure 2: roofline model of the Winograd steps on V100.

use bench::analytic_key;
use bench::json::obj;
use bench::report::Report;
use bench::sweep::Sweep;
use gpusim::DeviceSpec;
use perfmodel::roofline::{
    attainable_tflops, attainable_tflops_vs, direct_conv_intensity, gemm_intensity, l2_bandwidth,
    ridge_intensity, WINOGRAD_STEPS,
};

fn main() {
    let dev = DeviceSpec::v100();
    let mut steps: Vec<(&str, f64)> = WINOGRAD_STEPS
        .iter()
        .map(|p| (p.name, p.intensity))
        .collect();
    steps.extend([
        ("batched GEMM (bk=32)", gemm_intensity(32.0)),
        ("batched GEMM (bk=64)", gemm_intensity(64.0)),
        ("direct conv (bk=64)", direct_conv_intensity(64.0)),
    ]);
    let mut sw = Sweep::from_args("fig2");
    for &(name, i) in &steps {
        let dev = dev.clone();
        let key = analytic_key(&dev, &format!("fig2/{name}/{}", i.to_bits()));
        sw.point(key, move || {
            obj(&[
                ("dram_roof_tflops", attainable_tflops(&dev, i).into()),
                (
                    "l2_roof_tflops",
                    attainable_tflops_vs(&dev, i, l2_bandwidth(&dev)).into(),
                ),
            ])
        });
    }
    let mut results = sw.run().results.into_iter();

    let mut report = Report::from_args("fig2");
    println!(
        "Figure 2: V100 global-memory roofline (peak {:.1} TFLOPS, DRAM {:.0} GB/s, L2 {:.1} TB/s)",
        dev.peak_fp32_flops() / 1e12,
        dev.dram_bw / 1e9,
        l2_bandwidth(&dev) / 1e12
    );
    println!("ridge point: {:.1} ops/byte\n", ridge_intensity(&dev));

    println!(
        "{:<28} {:>10} {:>14} {:>14}",
        "kernel/step", "ops:byte", "DRAM-roof TF", "L2-roof TF"
    );
    for (name, i) in steps {
        let r = results.next().unwrap();
        let roof = |k: &str| {
            r.get(k)
                .and_then(|v| v.as_f64())
                .expect("valid roof record")
        };
        let dram_roof = roof("dram_roof_tflops");
        let l2_roof = roof("l2_roof_tflops");
        println!(
            "{:<28} {:>10.3} {:>14.2} {:>14.2}",
            name, i, dram_roof, l2_roof
        );
        report.add(
            dev.name,
            &[("step", name.into())],
            &[
                ("intensity_ops_per_byte", i.into()),
                ("dram_roof_tflops", dram_roof.into()),
                ("l2_roof_tflops", l2_roof.into()),
            ],
        );
        // `--metrics`: classify each step straight off the roofline.
        if bench::metrics::wanted() {
            report.add(
                dev.name,
                &bench::metrics::metrics_config(&[("step", name.into())]),
                &bench::metrics::analytic_metrics(&dev, i),
            );
        }
    }
    println!(
        "\nbk=64 raises the GEMM step's intensity by {:.0}% over bk=32 (paper: +33%)",
        100.0 * (gemm_intensity(64.0) / gemm_intensity(32.0) - 1.0)
    );

    // Roofline curve samples (for replotting).
    println!("\nintensity_ops_per_byte, dram_roof_tflops, l2_roof_tflops");
    let mut i = 0.25;
    while i <= 64.0 {
        println!(
            "{:.3}, {:.3}, {:.3}",
            i,
            attainable_tflops(&dev, i),
            attainable_tflops_vs(&dev, i, l2_bandwidth(&dev))
        );
        i *= 2.0;
    }
    report.finish();
}
