//! Table 6: speedup of our Winograd convolution over the cuDNN-like fused
//! Winograd convolution, on RTX 2070 and V100.
//!
//! Paper: RTX2070 up to 2.65× (avg 1.95×); V100 up to 2.13× (avg 1.5×);
//! Conv5 speedups are the largest (bk=64 halves input overfetch, §7.1), and
//! RTX2070 speedups exceed V100's (cuDNN gets 2 blocks/SM on V100 only).

use bench::report::Report;
use bench::{conv_for, time_sweep, x, Table};
use gpusim::DeviceSpec;
use wino_core::resnet::{BATCH_SIZES, RESNET_LAYERS};
use wino_core::Algo;

fn main() {
    println!("Table 6: speedup over the cuDNN-like fused Winograd convolution");
    println!("Paper: RTX2070 1.65x-2.65x (avg 1.95x); V100 1.23x-2.13x (avg 1.5x)\n");
    let devices = [DeviceSpec::rtx2070(), DeviceSpec::v100()];
    let mut points = Vec::new();
    for dev in &devices {
        for n in BATCH_SIZES {
            for layer in RESNET_LAYERS {
                points.push((conv_for(&layer, n, dev), Algo::OursFused));
                points.push((conv_for(&layer, n, dev), Algo::CudnnWinograd));
            }
        }
    }
    let mut timings = time_sweep("table6", points).into_iter();

    let mut report = Report::from_args("table6");
    for dev in devices {
        println!("{}:", dev.name);
        let mut t = Table::new(&["N", "Conv2", "Conv3", "Conv4", "Conv5"]);
        let mut all = Vec::new();
        for n in BATCH_SIZES {
            let mut row = vec![n.to_string()];
            for layer in RESNET_LAYERS {
                let ours = timings.next().unwrap().time_s;
                let cudnn = timings.next().unwrap().time_s;
                let sp = cudnn / ours;
                all.push(sp);
                row.push(x(sp));
                report.add(
                    dev.name,
                    &[("layer", layer.name.into()), ("n", n.into())],
                    &[
                        ("ours_us", (ours * 1e6).into()),
                        ("cudnn_us", (cudnn * 1e6).into()),
                        ("speedup", sp.into()),
                    ],
                );
            }
            t.row(row);
        }
        t.print();
        let avg = bench::mean(&all);
        println!("average: {}\n", x(avg));
        report.add(
            dev.name,
            &[("aggregate", "average".into())],
            &[("speedup", avg.into())],
        );
    }

    if bench::metrics::wanted() {
        let mut points = Vec::new();
        let mut cfgs = Vec::new();
        for dev in [DeviceSpec::rtx2070(), DeviceSpec::v100()] {
            for n in BATCH_SIZES {
                for layer in RESNET_LAYERS {
                    for a in [Algo::OursFused, Algo::CudnnWinograd] {
                        points.push((conv_for(&layer, n, &dev), a));
                        cfgs.push((dev.name, layer.name, n));
                    }
                }
            }
        }
        bench::metrics::add_conv_metrics_records(&mut report, "table6-metrics", points, |i, a| {
            let (dev_name, layer, n) = cfgs[i];
            (
                dev_name.to_string(),
                vec![
                    ("layer", layer.into()),
                    ("n", n.into()),
                    ("algo", a.name().into()),
                ],
            )
        });
    }
    report.finish();
}
