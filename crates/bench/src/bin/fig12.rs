//! Figure 12: speedup of our kernel over every other cuDNN algorithm on
//! RTX 2070. Paper highlights: ≥1.56× over everything on Conv2; faster than
//! all but WINOGRAD_NONFUSED on Conv5 (where F(4×4)'s 4× reduction wins).

use bench::report::Report;
use bench::{configs, label, time_sweep, x, Table};
use gpusim::DeviceSpec;
use wino_core::{Algo, Conv};

fn main() {
    run(DeviceSpec::rtx2070(), "Figure 12", "fig12");
}

#[allow(dead_code)] // `main` above is unused when included from fig13.rs
pub fn run(dev: DeviceSpec, fig: &str, experiment: &str) {
    println!(
        "{fig}: speedup of ours over all other algorithms (simulated {})\n",
        dev.name
    );
    let algos = [
        Algo::Fft,
        Algo::FftTiling,
        Algo::Gemm,
        Algo::ImplicitGemm,
        Algo::ImplicitPrecompGemm,
        Algo::WinogradNonfused,
    ];
    let mut points = Vec::new();
    for (layer, n) in configs() {
        points.push((Conv::new(layer.problem(n), dev.clone()), Algo::OursFused));
        for a in algos {
            points.push((Conv::new(layer.problem(n), dev.clone()), a));
        }
    }
    let mut timings = time_sweep(experiment, points).into_iter();

    let mut report = Report::from_args(experiment);
    let mut headers = vec!["layer"];
    for a in &algos {
        headers.push(a.name());
    }
    let mut t = Table::new(&headers);
    for (layer, n) in configs() {
        let ours = timings.next().unwrap().time_s;
        let mut row = vec![label(&layer, n)];
        for a in algos {
            let other = timings.next().unwrap().time_s;
            row.push(x(other / ours));
            report.add(
                dev.name,
                &[
                    ("layer", layer.name.into()),
                    ("n", n.into()),
                    ("algo", a.name().into()),
                ],
                &[
                    ("ours_us", (ours * 1e6).into()),
                    ("other_us", (other * 1e6).into()),
                    ("speedup", (other / ours).into()),
                ],
            );
        }
        t.row(row);
    }
    t.print();

    // FFT points drop out inside the sweep (analytic model, no kernel).
    if bench::metrics::wanted() {
        let mut points = Vec::new();
        let mut cfgs = Vec::new();
        for (layer, n) in configs() {
            for a in std::iter::once(Algo::OursFused).chain(algos) {
                points.push((Conv::new(layer.problem(n), dev.clone()), a));
                cfgs.push((layer.name, n));
            }
        }
        bench::metrics::add_conv_metrics_records(
            &mut report,
            &format!("{experiment}-metrics"),
            points,
            |i, a| {
                let (layer, n) = cfgs[i];
                (
                    dev.name.to_string(),
                    vec![
                        ("layer", layer.into()),
                        ("n", n.into()),
                        ("algo", a.name().into()),
                    ],
                )
            },
        );
    }
    report.finish();
}
