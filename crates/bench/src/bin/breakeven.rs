//! §8.1: the fused-F(2×2) vs non-fused-F(4×4) break-even analysis.
//! Paper: crossover at K = 129 (V100) and K = 127 (RTX 2070).

use bench::analytic_key;
use bench::json::{obj, Json};
use bench::report::Report;
use bench::sweep::Sweep;
use gpusim::DeviceSpec;
use perfmodel::{break_even_k, fused_f2_time, nonfused_f4_time};

const KS: [u32; 4] = [64, 128, 256, 512];

fn main() {
    println!("Section 8.1: fused F(2x2,3x3) vs non-fused F(4x4,3x3) break-even\n");
    let devices = [DeviceSpec::v100(), DeviceSpec::rtx2070()];
    let mut sw = Sweep::from_args("breakeven");
    for dev in &devices {
        let dev = dev.clone();
        let key = analytic_key(&dev, "breakeven");
        sw.point(key, move || {
            let rows = KS
                .iter()
                .map(|&kk| {
                    obj(&[
                        (
                            "fused_us",
                            (fused_f2_time(&dev, 32.0, kk as f64, 28.0, 28.0, kk as f64) * 1e6)
                                .into(),
                        ),
                        (
                            "nonfused_us",
                            (nonfused_f4_time(&dev, 32.0, kk as f64, 28.0, 28.0, kk as f64) * 1e6)
                                .into(),
                        ),
                    ])
                })
                .collect();
            obj(&[
                ("break_even_k", break_even_k(&dev).into()),
                ("rows", Json::Arr(rows)),
            ])
        });
    }
    let mut results = sw.run().results.into_iter();

    let mut report = Report::from_args("breakeven");
    for dev in devices {
        let r = results.next().unwrap();
        let k = r
            .get("break_even_k")
            .and_then(|v| v.as_f64())
            .expect("valid break-even record");
        println!(
            "{:8}: break-even K = {:.0}  (paper: {})",
            dev.name,
            k,
            if dev.name == "V100" { 129 } else { 127 }
        );
        report.add(
            dev.name,
            &[("aggregate", "break_even".into())],
            &[("k", k.into())],
        );
        println!("  K       fused(us)  nonfused(us)  winner");
        let rows = r.get("rows").and_then(|v| v.as_arr()).expect("rows");
        for (&kk, row) in KS.iter().zip(rows) {
            let f = row.get("fused_us").and_then(|v| v.as_f64()).unwrap();
            let nf = row.get("nonfused_us").and_then(|v| v.as_f64()).unwrap();
            println!(
                "  {:<7} {:>9.1} {:>13.1}  {}",
                kk,
                f,
                nf,
                if f < nf { "fused" } else { "non-fused" }
            );
            report.add(
                dev.name,
                &[("k", kk.into())],
                &[
                    ("fused_us", f.into()),
                    ("nonfused_us", nf.into()),
                    ("winner", if f < nf { "fused" } else { "non-fused" }.into()),
                ],
            );
        }
        println!();

        // `--metrics`: roofline classification of the two contenders' batched
        // GEMM steps — fused F(2x2) runs at bk=64 intensity, the non-fused
        // F(4x4) pipeline at the bk=32 intensity cuDNN ships (§3.3).
        if bench::metrics::wanted() {
            for (kernel, bk) in [("fused_f2", 64.0), ("nonfused_f4", 32.0)] {
                report.add(
                    dev.name,
                    &bench::metrics::metrics_config(&[("kernel", kernel.into())]),
                    &bench::metrics::analytic_metrics(
                        &dev,
                        perfmodel::roofline::gemm_intensity(bk),
                    ),
                );
            }
        }
    }
    report.finish();
}
