//! §8.1: the fused-F(2×2) vs non-fused-F(4×4) break-even analysis.
//! Paper: crossover at K = 129 (V100) and K = 127 (RTX 2070).

use bench::report::Report;
use gpusim::DeviceSpec;
use perfmodel::{break_even_k, fused_f2_time, nonfused_f4_time};

fn main() {
    println!("Section 8.1: fused F(2x2,3x3) vs non-fused F(4x4,3x3) break-even\n");
    let mut report = Report::from_args("breakeven");
    for dev in [DeviceSpec::v100(), DeviceSpec::rtx2070()] {
        let k = break_even_k(&dev);
        println!(
            "{:8}: break-even K = {:.0}  (paper: {})",
            dev.name,
            k,
            if dev.name == "V100" { 129 } else { 127 }
        );
        report.add(
            dev.name,
            &[("aggregate", "break_even".into())],
            &[("k", k.into())],
        );
        println!("  K       fused(us)  nonfused(us)  winner");
        for kk in [64u32, 128, 256, 512] {
            let f = fused_f2_time(&dev, 32.0, kk as f64, 28.0, 28.0, kk as f64) * 1e6;
            let nf = nonfused_f4_time(&dev, 32.0, kk as f64, 28.0, 28.0, kk as f64) * 1e6;
            println!(
                "  {:<7} {:>9.1} {:>13.1}  {}",
                kk,
                f,
                nf,
                if f < nf { "fused" } else { "non-fused" }
            );
            report.add(
                dev.name,
                &[("k", kk.into())],
                &[
                    ("fused_us", f.into()),
                    ("nonfused_us", nf.into()),
                    ("winner", if f < nf { "fused" } else { "non-fused" }.into()),
                ],
            );
        }
        println!();
    }
    report.finish();
}
