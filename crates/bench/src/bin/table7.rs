//! Table 7: parameters of our implementation vs cuDNN 7.6.1's Winograd,
//! with the §7.1 occupancy consequence on both devices.

use bench::json::{obj, Json};
use bench::report::Report;
use bench::simcache::CacheKey;
use bench::sweep::Sweep;
use bench::Table;
use gpusim::DeviceSpec;
use kernels::{FusedConfig, FusedKernel};
use perfmodel::kernel_table;

fn main() {
    println!("Table 7: kernel parameters\n");
    let devices = [DeviceSpec::v100(), DeviceSpec::rtx2070()];
    let [ours, cudnn] = kernel_table();
    let mut sw = Sweep::from_args("table7");
    for (which, p) in [("ours", ours), ("cudnn", cudnn)] {
        let devices = devices.clone();
        let mut d = gpusim::Digest::new();
        for dev in &devices {
            dev.digest_into(&mut d);
        }
        d.str("table7")
            .str(which)
            .u64(bench::ANALYTIC_MODEL_VERSION);
        sw.point(CacheKey::from_digest(&d), move || {
            obj(&[
                ("bk", p.bk.into()),
                ("bn", p.bn.into()),
                ("bc", p.bc.into()),
                ("threads_per_block", p.threads_per_block.into()),
                ("smem_per_block", p.smem_per_block.into()),
                ("regs_per_thread", p.regs_per_thread.into()),
                ("regs_per_block", p.regs_per_block().into()),
                ("blocks_per_sm_v100", p.blocks_per_sm(&devices[0]).into()),
                ("blocks_per_sm_rtx2070", p.blocks_per_sm(&devices[1]).into()),
            ])
        });
    }
    let results = sw.run().results;
    let g = |r: &Json, k: &str| -> u64 {
        r.get(k)
            .and_then(|v| v.as_f64())
            .expect("valid kernel-parameter record") as u64
    };
    let (r_ours, r_cudnn) = (&results[0], &results[1]);

    let mut report = Report::from_args("table7");
    let mut t = Table::new(&["Parameters", "Ours", "cuDNN's"]);
    t.row(vec![
        "(bk, bn, bc)".into(),
        format!(
            "({},{},{})",
            g(r_ours, "bk"),
            g(r_ours, "bn"),
            g(r_ours, "bc")
        ),
        format!(
            "({},{},{})",
            g(r_cudnn, "bk"),
            g(r_cudnn, "bn"),
            g(r_cudnn, "bc")
        ),
    ]);
    t.row(vec![
        "Threads per block".into(),
        g(r_ours, "threads_per_block").to_string(),
        g(r_cudnn, "threads_per_block").to_string(),
    ]);
    t.row(vec![
        "SMEM per block".into(),
        format!("{}KB", g(r_ours, "smem_per_block") / 1024),
        format!("{}KB", g(r_cudnn, "smem_per_block") / 1024),
    ]);
    t.row(vec![
        "Registers per thread".into(),
        g(r_ours, "regs_per_thread").to_string(),
        g(r_cudnn, "regs_per_thread").to_string(),
    ]);
    t.row(vec![
        "Registers per block".into(),
        g(r_ours, "regs_per_block").to_string(),
        g(r_cudnn, "regs_per_block").to_string(),
    ]);
    for (dev, key) in [
        (&devices[0], "blocks_per_sm_v100"),
        (&devices[1], "blocks_per_sm_rtx2070"),
    ] {
        t.row(vec![
            format!("Blocks/SM on {}", dev.name),
            g(r_ours, key).to_string(),
            g(r_cudnn, key).to_string(),
        ]);
    }
    t.print();

    for (which, r) in [("ours", r_ours), ("cudnn", r_cudnn)] {
        for (dev, key) in [
            (&devices[0], "blocks_per_sm_v100"),
            (&devices[1], "blocks_per_sm_rtx2070"),
        ] {
            report.add(
                dev.name,
                &[("kernel", which.into())],
                &[
                    ("bk", g(r, "bk").into()),
                    ("bn", g(r, "bn").into()),
                    ("bc", g(r, "bc").into()),
                    ("threads_per_block", g(r, "threads_per_block").into()),
                    ("smem_per_block", g(r, "smem_per_block").into()),
                    ("regs_per_thread", g(r, "regs_per_thread").into()),
                    ("regs_per_block", g(r, "regs_per_block").into()),
                    ("blocks_per_sm", g(r, key).into()),
                ],
            );
            // `--metrics`: each kernel's batched-GEMM step classified at the
            // intensity its bk implies (§3.3: bk=64 → 10.67, bk=32 → 8).
            if bench::metrics::wanted() {
                report.add(
                    dev.name,
                    &bench::metrics::metrics_config(&[("kernel", which.into())]),
                    &bench::metrics::analytic_metrics(
                        dev,
                        perfmodel::roofline::gemm_intensity(g(r, "bk") as f64),
                    ),
                );
            }
        }
    }
    report.finish();

    // Cross-check the emitted kernels against the table.
    let k_ours = FusedKernel::emit(FusedConfig::ours(64, 56, 56, 32, 64));
    let k_cudnn = FusedKernel::emit(FusedConfig::cudnn_like(64, 56, 56, 32, 32));
    println!("\nEmitted kernels: ours uses {} regs/thread ({} B smem), cuDNN-like uses {} regs/thread ({} B smem)",
        k_ours.module.info.num_regs, k_ours.module.info.smem_bytes,
        k_cudnn.module.info.num_regs, k_cudnn.module.info.smem_bytes);
}
