//! Table 7: parameters of our implementation vs cuDNN 7.6.1's Winograd,
//! with the §7.1 occupancy consequence on both devices.

use bench::report::Report;
use bench::Table;
use gpusim::DeviceSpec;
use kernels::{FusedConfig, FusedKernel};
use perfmodel::kernel_table;

fn main() {
    println!("Table 7: kernel parameters\n");
    let mut report = Report::from_args("table7");
    let mut t = Table::new(&["Parameters", "Ours", "cuDNN's"]);
    let [ours, cudnn] = kernel_table();
    t.row(vec![
        "(bk, bn, bc)".into(),
        format!("({},{},{})", ours.bk, ours.bn, ours.bc),
        format!("({},{},{})", cudnn.bk, cudnn.bn, cudnn.bc),
    ]);
    t.row(vec![
        "Threads per block".into(),
        ours.threads_per_block.to_string(),
        cudnn.threads_per_block.to_string(),
    ]);
    t.row(vec![
        "SMEM per block".into(),
        format!("{}KB", ours.smem_per_block / 1024),
        format!("{}KB", cudnn.smem_per_block / 1024),
    ]);
    t.row(vec![
        "Registers per thread".into(),
        ours.regs_per_thread.to_string(),
        cudnn.regs_per_thread.to_string(),
    ]);
    t.row(vec![
        "Registers per block".into(),
        ours.regs_per_block().to_string(),
        cudnn.regs_per_block().to_string(),
    ]);
    for dev in [DeviceSpec::v100(), DeviceSpec::rtx2070()] {
        t.row(vec![
            format!("Blocks/SM on {}", dev.name),
            ours.blocks_per_sm(&dev).to_string(),
            cudnn.blocks_per_sm(&dev).to_string(),
        ]);
    }
    t.print();

    for (which, p) in [("ours", &ours), ("cudnn", &cudnn)] {
        for dev in [DeviceSpec::v100(), DeviceSpec::rtx2070()] {
            report.add(
                dev.name,
                &[("kernel", which.into())],
                &[
                    ("bk", p.bk.into()),
                    ("bn", p.bn.into()),
                    ("bc", p.bc.into()),
                    ("threads_per_block", p.threads_per_block.into()),
                    ("smem_per_block", p.smem_per_block.into()),
                    ("regs_per_thread", p.regs_per_thread.into()),
                    ("regs_per_block", p.regs_per_block().into()),
                    ("blocks_per_sm", p.blocks_per_sm(&dev).into()),
                ],
            );
        }
    }
    report.finish();

    // Cross-check the emitted kernels against the table.
    let k_ours = FusedKernel::emit(FusedConfig::ours(64, 56, 56, 32, 64));
    let k_cudnn = FusedKernel::emit(FusedConfig::cudnn_like(64, 56, 56, 32, 32));
    println!("\nEmitted kernels: ours uses {} regs/thread ({} B smem), cuDNN-like uses {} regs/thread ({} B smem)",
        k_ours.module.info.num_regs, k_ours.module.info.smem_bytes,
        k_cudnn.module.info.num_regs, k_cudnn.module.info.smem_bytes);
}
