//! Perf-regression gate: diff experiment `--json` reports against committed
//! baselines. See `bench::metricsdiff` for semantics and exit codes.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(bench::metricsdiff::run_cli(&args));
}
