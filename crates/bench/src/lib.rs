//! `bench` — the experiment harness: one binary per table and figure of the
//! paper's evaluation (see DESIGN.md §2.6 for the index), plus
//! micro-benchmarks of the host-side hot paths.
//!
//! Every binary prints the same rows/series the paper reports, with the
//! published values alongside for comparison; EXPERIMENTS.md records the
//! paper-vs-measured discussion. Passing `--json <path>` to any experiment
//! binary additionally writes the measured numbers as JSON records (see
//! [`report::Report`]).

pub mod harness;
pub mod json;
pub mod report;

use gpusim::DeviceSpec;
use wino_core::resnet::{eval_grid, ResnetLayer};
use wino_core::{Conv, ConvProblem};

/// The 16 `(layer, batch)` points used by Tables 2/6 and Figs. 7–13.
pub fn configs() -> Vec<(ResnetLayer, usize)> {
    eval_grid()
}

/// `ConvxNn` label.
pub fn label(layer: &ResnetLayer, n: usize) -> String {
    layer.label(n)
}

/// Conv bound to a device for a grid point.
pub fn conv_for(layer: &ResnetLayer, n: usize, dev: &DeviceSpec) -> Conv {
    Conv::new(layer.problem(n), dev.clone())
}

/// A convolution problem for one grid point.
pub fn problem_for(layer: &ResnetLayer, n: usize) -> ConvProblem {
    layer.problem(n)
}

/// Render a simple aligned table.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                s.push_str(&format!("{:>w$}  ", c, w = widths[i]));
            }
            println!("{}", s.trim_end());
        };
        line(&self.headers);
        println!(
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for row in &self.rows {
            line(row);
        }
    }
}

/// Format seconds as microseconds.
pub fn us(t: f64) -> String {
    format!("{:.1}", t * 1e6)
}

/// Format a speedup.
pub fn x(v: f64) -> String {
    format!("{v:.2}x")
}

/// Geometric-free average of a slice.
pub fn mean(v: &[f64]) -> f64 {
    v.iter().sum::<f64>() / v.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_configs() {
        assert_eq!(configs().len(), 16);
    }

    #[test]
    fn table_renders() {
        let mut t = Table::new(&["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.print();
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(x(1.5), "1.50x");
    }
}
