//! `bench` — the experiment harness: one binary per table and figure of the
//! paper's evaluation (see DESIGN.md §2.6 for the index), plus
//! micro-benchmarks of the host-side hot paths.
//!
//! Every binary prints the same rows/series the paper reports, with the
//! published values alongside for comparison; EXPERIMENTS.md records the
//! paper-vs-measured discussion. Passing `--json <path>` to any experiment
//! binary additionally writes the measured numbers as JSON records (see
//! [`report::Report`]).

pub mod harness;
pub mod json;
pub mod metrics;
pub mod metricsdiff;
pub mod report;
pub mod simcache;
pub mod sweep;
pub mod trace;

use gpusim::DeviceSpec;
use kernels::FusedConfig;
use wino_core::resnet::{eval_grid, ResnetLayer};
use wino_core::{AlgoTiming, Conv, ConvProblem};

use crate::simcache::CacheKey;
use crate::sweep::Sweep;
pub use wino_core::Algo;

/// The 16 `(layer, batch)` points used by Tables 2/6 and Figs. 7–13.
pub fn configs() -> Vec<(ResnetLayer, usize)> {
    eval_grid()
}

/// `ConvxNn` label.
pub fn label(layer: &ResnetLayer, n: usize) -> String {
    layer.label(n)
}

/// Conv bound to a device for a grid point.
pub fn conv_for(layer: &ResnetLayer, n: usize, dev: &DeviceSpec) -> Conv {
    Conv::new(layer.problem(n), dev.clone())
}

/// A convolution problem for one grid point.
pub fn problem_for(layer: &ResnetLayer, n: usize) -> ConvProblem {
    layer.problem(n)
}

/// Evaluate [`Conv::time`] for every `(conv, algo)` point on the sweep
/// engine ([`sweep::Sweep::from_args`]: `--jobs/--cache/...` respected) and
/// return the timings in registration order. Each point is content-addressed
/// by [`Conv::time_digest`], so cached and fresh results are
/// indistinguishable bit-for-bit.
pub fn time_sweep(name: &str, points: Vec<(Conv, Algo)>) -> Vec<AlgoTiming> {
    let mut sw = Sweep::from_args(name);
    for (conv, algo) in points {
        let key = CacheKey::from_digest(&conv.time_digest(algo));
        sw.point(key, move || simcache::algo_timing_to_json(&conv.time(algo)));
    }
    sw.run()
        .results
        .iter()
        .map(|r| simcache::algo_timing_from_json(r).expect("valid algo-timing cache record"))
        .collect()
}

/// Evaluate [`Conv::time_fused_mainloop`] for every `(conv, cfg)` point on
/// the sweep engine and return the main-loop region TFLOPS in registration
/// order (the Figures 7–9 / ablation measurement). Points are
/// content-addressed by [`Conv::mainloop_digest`].
pub fn mainloop_sweep(name: &str, points: Vec<(Conv, FusedConfig)>) -> Vec<f64> {
    let mut sw = Sweep::from_args(name);
    for (conv, cfg) in points {
        let key = CacheKey::from_digest(&conv.mainloop_digest(cfg));
        sw.point(key, move || {
            let (_, tflops) = conv.time_fused_mainloop(cfg);
            json::obj(&[("mainloop_tflops", tflops.into())])
        });
    }
    sw.run()
        .results
        .iter()
        .map(|r| {
            r.get("mainloop_tflops")
                .and_then(json::Json::as_f64)
                .expect("valid mainloop cache record")
        })
        .collect()
}

/// Version tag mixed into the cache keys of *analytic* experiment points
/// (roofline/workspace/break-even formulas with no simulated kernel whose
/// bytes could be hashed). Bump when any analytic model formula changes so
/// stale cache entries invalidate.
///
/// * v1 — PRs 1–5.
/// * v2 — full-device multi-wave timing model (`gpusim::device_sim`): the
///   simulated-kernel phases analytic points are compared against moved, so
///   the analytic entries move in lockstep.
pub const ANALYTIC_MODEL_VERSION: u64 = 2;

/// Cache key for an analytic point: device + a caller-chosen label that
/// encodes every remaining input + [`ANALYTIC_MODEL_VERSION`].
pub fn analytic_key(dev: &DeviceSpec, label: &str) -> CacheKey {
    let mut d = gpusim::Digest::new();
    dev.digest_into(&mut d);
    d.str(label).u64(ANALYTIC_MODEL_VERSION);
    CacheKey::from_digest(&d)
}

/// Render a simple aligned table.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                s.push_str(&format!("{:>w$}  ", c, w = widths[i]));
            }
            println!("{}", s.trim_end());
        };
        line(&self.headers);
        println!(
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for row in &self.rows {
            line(row);
        }
    }
}

/// Format seconds as microseconds.
pub fn us(t: f64) -> String {
    format!("{:.1}", t * 1e6)
}

/// Format a speedup.
pub fn x(v: f64) -> String {
    format!("{v:.2}x")
}

/// Geometric-free average of a slice.
pub fn mean(v: &[f64]) -> f64 {
    v.iter().sum::<f64>() / v.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_configs() {
        assert_eq!(configs().len(), 16);
    }

    #[test]
    fn table_renders() {
        let mut t = Table::new(&["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.print();
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(x(1.5), "1.50x");
    }
}
