//! `metricsdiff` — the perf-regression gate over `--json` reports.
//!
//! Compares two experiment report files (as written by
//! [`crate::report::Report`]), or a set of fresh reports against the
//! committed `baselines/` directory, and fails — non-zero exit — when any
//! metric drifts past its tolerance. CI regenerates the gated reports from
//! the simulator on every push and runs this diff, so a change that shifts a
//! timing, a counter or a bottleneck classification must either be
//! intentional (regenerate the baseline, reviewable in the PR diff) or is a
//! regression caught at the gate.
//!
//! Matching: records pair up by `(experiment, device, config)` — config
//! compared by rendered JSON, so the `kind` marker separates timing /
//! profile / metrics records of the same grid point. Every **baseline**
//! record must appear in the new report with every baseline metric present;
//! extra new records or metrics pass (adding coverage never fails the gate,
//! removing it does).
//!
//! Tolerances are **relative**: `|new − old| ≤ tol·max(|new|, |old|) + 1e-9`
//! (the additive term keeps exact zeros comparable). The default is
//! [`DEFAULT_TOL`]; [`METRIC_TOLERANCES`] widens individual metrics whose
//! value is a ratio of two near-equal numbers (classification pressures,
//! headroom) and therefore amplifies small shifts. String metrics — the
//! `bound` classification — must match exactly. The simulator is
//! deterministic, so a same-commit rerun diffs clean at *any* tolerance;
//! the slack only absorbs deliberate micro-tuning of model constants.

use std::collections::HashMap;

use crate::json::{parse, Json};

/// Default relative tolerance for numeric metrics.
pub const DEFAULT_TOL: f64 = 0.02;

/// Per-metric tolerance overrides (metric name, relative tolerance).
/// Pressures and headroom are ratios near their ceilings where tiny cycle
/// shifts move the last digit; averages over small histograms wobble more
/// than totals.
pub const METRIC_TOLERANCES: &[(&str, f64)] = &[
    ("headroom_pct", 0.05),
    ("compute_pressure", 0.05),
    ("dram_pressure", 0.05),
    ("smem_pressure", 0.05),
    ("eligible_warps_avg", 0.05),
];

/// Tolerance for `metric`, honoring overrides.
pub fn tolerance(metric: &str, default_tol: f64) -> f64 {
    METRIC_TOLERANCES
        .iter()
        .find(|(m, _)| *m == metric)
        .map_or(default_tol, |(_, t)| *t)
}

/// Outcome of diffing one baseline report against one new report.
#[derive(Debug, Default)]
pub struct DiffReport {
    /// Metrics compared across all matched records.
    pub compared: usize,
    /// Human-readable regression lines (`record :: metric: old -> new`).
    pub diffs: Vec<String>,
}

impl DiffReport {
    pub fn clean(&self) -> bool {
        self.diffs.is_empty()
    }
}

fn record_id(r: &Json) -> String {
    let field = |k: &str| r.get(k).map_or_else(|| "null".into(), Json::render);
    format!(
        "{} / {} / {}",
        r.get("experiment")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_owned(),
        r.get("device").and_then(Json::as_str).unwrap_or("?"),
        field("config"),
    )
}

/// Absolute floor added to every relative tolerance so exact-zero metrics
/// (e.g. a conflict counter that must stay 0) still compare, and so a
/// zero baseline cannot silently widen to "anything goes".
const ABS_FLOOR: f64 = 1e-9;

fn numbers_match(old: f64, new: f64, tol: f64) -> bool {
    // Bitwise-equal values (including 0 == 0 and inf == inf) always match;
    // any non-finite value that *differs* never does — a NaN that appears in
    // a report must trip the gate, not hide behind a false comparison.
    if old == new {
        return true;
    }
    if !old.is_finite() || !new.is_finite() {
        return false;
    }
    if old == 0.0 {
        // Zero baseline: there is no magnitude to be relative to. Only the
        // absolute floor applies — a counter that was 0 and became 1e6 is a
        // regression at any relative tolerance.
        return new.abs() <= ABS_FLOOR;
    }
    (new - old).abs() <= tol * old.abs().max(new.abs()) + ABS_FLOOR
}

/// Diff parsed reports: every baseline record and metric must survive in
/// `new` within tolerance. Returns `Err` on malformed reports.
pub fn diff_reports(baseline: &Json, new: &Json, default_tol: f64) -> Result<DiffReport, String> {
    let base_recs = baseline
        .as_arr()
        .ok_or("baseline report is not a JSON array")?;
    let new_recs = new.as_arr().ok_or("new report is not a JSON array")?;

    let mut new_by_id: HashMap<String, &Json> = HashMap::new();
    for r in new_recs {
        new_by_id.insert(record_id(r), r);
    }

    let mut out = DiffReport::default();
    for b in base_recs {
        let id = record_id(b);
        let Some(n) = new_by_id.get(&id) else {
            out.diffs
                .push(format!("{id} :: record missing from new report"));
            continue;
        };
        let (Some(Json::Obj(bm)), nm) = (b.get("metrics"), n.get("metrics")) else {
            return Err(format!("{id} :: baseline record has no metrics object"));
        };
        for (key, old_v) in bm {
            out.compared += 1;
            let Some(new_v) = nm.and_then(|m| m.get(key)) else {
                out.diffs.push(format!("{id} :: metric {key} missing"));
                continue;
            };
            let ok = match (old_v, new_v) {
                (Json::Num(o), Json::Num(w)) => numbers_match(*o, *w, tolerance(key, default_tol)),
                (o, w) => o.render() == w.render(),
            };
            if !ok {
                out.diffs.push(format!(
                    "{id} :: {key}: {} -> {} (tol {})",
                    old_v.render(),
                    new_v.render(),
                    tolerance(key, default_tol),
                ));
            }
        }
    }
    Ok(out)
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn diff_files(base_path: &str, new_path: &str, tol: f64) -> Result<DiffReport, String> {
    let base = load(base_path)?;
    let new = load(new_path)?;
    diff_reports(&base, &new, tol)
}

const USAGE: &str = "usage: metricsdiff OLD.json NEW.json [--tol T]\n\
       metricsdiff --baseline DIR NEW.json... [--tol T]\n\
  exit 0: no drift; 1: regression past tolerance; 2: bad usage/input";

/// The `metricsdiff` binary, testable: returns the process exit code.
/// `--baseline DIR` pairs each new report with `DIR/<file name>`.
pub fn run_cli(args: &[String]) -> i32 {
    let mut tol = DEFAULT_TOL;
    let mut baseline_dir: Option<String> = None;
    let mut files: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tol" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v >= 0.0 => tol = v,
                _ => {
                    eprintln!("metricsdiff: --tol needs a non-negative number\n{USAGE}");
                    return 2;
                }
            },
            "--baseline" => match it.next() {
                Some(d) => baseline_dir = Some(d.clone()),
                None => {
                    eprintln!("metricsdiff: --baseline needs a directory\n{USAGE}");
                    return 2;
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return 0;
            }
            f if !f.starts_with('-') => files.push(f.to_string()),
            other => {
                eprintln!("metricsdiff: unknown flag {other}\n{USAGE}");
                return 2;
            }
        }
    }

    let pairs: Vec<(String, String)> = match &baseline_dir {
        Some(dir) => {
            if files.is_empty() {
                eprintln!("metricsdiff: --baseline needs at least one new report\n{USAGE}");
                return 2;
            }
            files
                .iter()
                .map(|f| {
                    let name = std::path::Path::new(f)
                        .file_name()
                        .map(|n| n.to_string_lossy().into_owned())
                        .unwrap_or_else(|| f.clone());
                    (format!("{dir}/{name}"), f.clone())
                })
                .collect()
        }
        None => {
            if files.len() != 2 {
                eprintln!("metricsdiff: need exactly OLD and NEW\n{USAGE}");
                return 2;
            }
            vec![(files[0].clone(), files[1].clone())]
        }
    };

    let mut regressions = 0usize;
    for (base, new) in &pairs {
        match diff_files(base, new, tol) {
            Ok(d) if d.clean() => {
                eprintln!(
                    "[metricsdiff] {base} vs {new}: {} metrics, no drift",
                    d.compared
                );
            }
            Ok(d) => {
                regressions += d.diffs.len();
                eprintln!(
                    "[metricsdiff] {base} vs {new}: {} metrics, {} REGRESSED:",
                    d.compared,
                    d.diffs.len()
                );
                for line in &d.diffs {
                    println!("  {line}");
                }
            }
            Err(e) => {
                eprintln!("metricsdiff: {e}");
                return 2;
            }
        }
    }
    i32::from(regressions > 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::obj;

    fn rec(dev: &str, layer: &str, v: f64, bound: &str) -> Json {
        obj(&[
            ("experiment", "t".into()),
            ("device", dev.into()),
            ("config", obj(&[("layer", layer.into())])),
            (
                "metrics",
                obj(&[("speedup", v.into()), ("bound", bound.into())]),
            ),
        ])
    }

    #[test]
    fn identical_reports_diff_clean() {
        let r = Json::Arr(vec![rec("V100", "Conv2", 1.5, "dram")]);
        let d = diff_reports(&r, &r, DEFAULT_TOL).unwrap();
        assert!(d.clean());
        assert_eq!(d.compared, 2);
    }

    #[test]
    fn drift_and_missing_records_are_caught() {
        let base = Json::Arr(vec![
            rec("V100", "Conv2", 1.5, "dram"),
            rec("V100", "Conv3", 2.0, "dram"),
        ]);
        // Conv2 drifts 10% ≫ 2% tol; Conv3 vanished entirely.
        let new = Json::Arr(vec![rec("V100", "Conv2", 1.65, "dram")]);
        let d = diff_reports(&base, &new, DEFAULT_TOL).unwrap();
        assert_eq!(d.diffs.len(), 2, "{:?}", d.diffs);
        // Within tolerance passes; bound flip fails even with huge tol.
        let near = Json::Arr(vec![rec("V100", "Conv2", 1.5004, "dram")]);
        assert!(diff_reports(
            &base.as_arr().unwrap()[0..1].to_vec().into(),
            &near,
            DEFAULT_TOL
        )
        .unwrap()
        .clean());
        let flipped = Json::Arr(vec![rec("V100", "Conv2", 1.5, "smem")]);
        let d = diff_reports(
            &Json::Arr(vec![rec("V100", "Conv2", 1.5, "dram")]),
            &flipped,
            10.0,
        )
        .unwrap();
        assert_eq!(d.diffs.len(), 1);
    }

    #[test]
    fn extra_new_records_and_metrics_pass() {
        let base = Json::Arr(vec![rec("V100", "Conv2", 1.5, "dram")]);
        let mut extra = rec("V100", "Conv2", 1.5, "dram");
        if let Json::Obj(fields) = &mut extra {
            if let Some((_, Json::Obj(m))) = fields.iter_mut().find(|(k, _)| k == "metrics") {
                m.push(("new_metric".into(), 7.0.into()));
            }
        }
        let new = Json::Arr(vec![extra, rec("RTX2070", "Conv2", 9.9, "smem")]);
        assert!(diff_reports(&base, &new, DEFAULT_TOL).unwrap().clean());
    }

    #[test]
    fn tolerance_overrides_apply() {
        assert_eq!(tolerance("speedup", DEFAULT_TOL), DEFAULT_TOL);
        assert_eq!(tolerance("headroom_pct", DEFAULT_TOL), 0.05);
        assert!(numbers_match(0.0, 0.0, 0.0));
        assert!(numbers_match(100.0, 101.9, 0.02));
        assert!(!numbers_match(100.0, 103.0, 0.02));
    }

    #[test]
    fn zero_baseline_trips_the_gate() {
        // A counter that must stay zero (e.g. smem_conflict_cycles) really
        // gates: relative tolerance has no magnitude to scale, so any real
        // drift off 0 is a regression even with a huge tolerance.
        assert!(!numbers_match(0.0, 1.0, 10.0));
        assert!(!numbers_match(0.0, 1e-6, 10.0));
        assert!(numbers_match(0.0, 0.0, 10.0));
        assert!(numbers_match(0.0, 1e-12, 0.0)); // below the absolute floor
        assert!(!numbers_match(1.0, 0.0, 0.02)); // the reverse direction too

        // And end-to-end through a report diff.
        let z = |v: f64| {
            obj(&[
                ("experiment", "t".into()),
                ("device", "V100".into()),
                ("config", obj(&[("layer", "Conv2".into())])),
                ("metrics", obj(&[("smem_conflict_cycles", v.into())])),
            ])
        };
        let base = Json::Arr(vec![z(0.0)]);
        let bad = Json::Arr(vec![z(123.0)]);
        let d = diff_reports(&base, &bad, DEFAULT_TOL).unwrap();
        assert_eq!(d.diffs.len(), 1, "{:?}", d.diffs);
        assert!(diff_reports(&base, &base, DEFAULT_TOL).unwrap().clean());
    }

    #[test]
    fn non_finite_values_never_match_silently() {
        assert!(!numbers_match(1.0, f64::NAN, 10.0));
        assert!(!numbers_match(f64::NAN, 1.0, 10.0));
        assert!(!numbers_match(f64::NAN, f64::NAN, 10.0)); // NaN != NaN
        assert!(!numbers_match(1.0, f64::INFINITY, 10.0));
        assert!(numbers_match(f64::INFINITY, f64::INFINITY, 0.0));
    }
}
