//! A minimal micro-benchmark harness (the build environment cannot fetch
//! Criterion, so the `benches/` targets hand-roll their measurement loop).
//!
//! Protocol per benchmark: warm up for a fixed fraction of the measurement
//! budget, then run batches until the time budget is spent, recording
//! per-iteration wall time per batch. The median batch is reported, which is
//! robust to scheduler noise in the tails. Respects a substring filter from
//! the command line (`cargo bench -p bench -- fused` runs only matching
//! benchmarks), like the Criterion CLI it replaces.

use std::time::{Duration, Instant};

/// Wall-clock budget spent measuring each benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(900);
/// Warm-up budget preceding measurement.
const WARMUP_BUDGET: Duration = Duration::from_millis(200);

/// Top-level harness; owns the CLI filter.
pub struct Harness {
    filter: Vec<String>,
}

impl Harness {
    /// Build from `std::env::args`, treating every non-flag argument as a
    /// name filter (match = substring). Cargo's `--bench` flag is ignored.
    pub fn from_args() -> Self {
        let filter = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect();
        Harness { filter }
    }

    fn selected(&self, name: &str) -> bool {
        self.filter.is_empty() || self.filter.iter().any(|f| name.contains(f))
    }

    /// Run one benchmark. `elements` (optional) adds an elements/sec rate to
    /// the report, like Criterion's `Throughput::Elements`.
    pub fn bench<T>(&self, name: &str, elements: Option<u64>, mut f: impl FnMut() -> T) {
        if !self.selected(name) {
            return;
        }
        // Warm-up: establishes caches/allocator state and a per-iter estimate.
        let warm_start = Instant::now();
        let mut iters: u64 = 0;
        while warm_start.elapsed() < WARMUP_BUDGET {
            std::hint::black_box(f());
            iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / iters as f64;
        // Batch size targeting ~30 batches within the measurement budget.
        let batch = ((MEASURE_BUDGET.as_secs_f64() / 30.0 / per_iter).ceil() as u64).max(1);
        let mut samples: Vec<f64> = Vec::new();
        let start = Instant::now();
        while start.elapsed() < MEASURE_BUDGET {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            samples.push(t0.elapsed().as_secs_f64() / batch as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        let lo = samples[samples.len() / 10];
        let hi = samples[samples.len() - 1 - samples.len() / 10];
        let rate = match elements {
            Some(n) => format!("  {:>12}/s", human_rate(n as f64 / median)),
            None => String::new(),
        };
        println!(
            "{name:<44} {:>12}  [{} .. {}]{rate}",
            human_time(median),
            human_time(lo),
            human_time(hi),
        );
    }
}

/// `1234.5 ns` / `12.3 us` / ... with 4 significant-ish digits.
fn human_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{:.3} s", secs)
    }
}

fn human_rate(per_sec: f64) -> String {
    if per_sec >= 1e9 {
        format!("{:.2} G", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2} M", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2} K", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats() {
        assert_eq!(human_time(2.5e-9), "2.5 ns");
        assert_eq!(human_time(2.5e-6), "2.50 us");
        assert_eq!(human_time(2.5e-3), "2.50 ms");
        assert_eq!(human_time(2.5), "2.500 s");
        assert_eq!(human_rate(2.5e9), "2.50 G");
    }

    #[test]
    fn filter_matches_substring() {
        let h = Harness {
            filter: vec!["fused".into()],
        };
        assert!(h.selected("emit_fused_kernel"));
        assert!(!h.selected("fft2d/16"));
        let all = Harness { filter: vec![] };
        assert!(all.selected("anything"));
    }
}
