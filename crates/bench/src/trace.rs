//! Chrome trace-event JSON writer, shared by the two timeline exports:
//! the serving-pool timeline (`serve --pool-trace`, one lane per pool
//! device, batches as complete events, deadline misses as instants) and the
//! device wave timeline (`convbench --trace`, one lane per SM, wave
//! executions as complete events, wave boundaries as instants).
//!
//! The output is the Trace Event Format consumed by Perfetto and
//! `chrome://tracing`: a `{"traceEvents": [...]}` wrapper holding `"ph":
//! "X"` (complete), `"ph": "i"` (instant) and `"ph": "M"` (metadata)
//! records. `ts`/`dur` carry the producer's native integer timeline unit
//! verbatim — nanoseconds for the pool timeline, SM cycles for the wave
//! timeline — so the file is byte-deterministic; viewers only use the
//! values relatively. A top-level `"truncated"` flag mirrors the producer's
//! buffer-cap state (see [`gpusim::device_sim::WAVE_SPAN_CAP`]), so tools
//! can distinguish "short run" from "clipped recording".
//!
//! Events render in insertion order; callers that need deterministic output
//! across `--jobs` must insert in a deterministic order (both producers
//! iterate their already-sorted span lists).

use crate::json::{obj, Json};

/// An in-memory Chrome trace: build with [`ChromeTrace::complete`] /
/// [`ChromeTrace::instant`] and the lane-naming metadata helpers, then
/// [`ChromeTrace::render`] the whole document.
#[derive(Default)]
pub struct ChromeTrace {
    events: Vec<Json>,
    spans: usize,
    truncated: bool,
}

impl ChromeTrace {
    pub fn new() -> Self {
        Self::default()
    }

    /// Latch the truncation flag (sticky OR — a trace assembled from many
    /// producer buffers is truncated if any of them clipped).
    pub fn set_truncated(&mut self, truncated: bool) {
        self.truncated |= truncated;
    }

    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Number of timeline events recorded so far (metadata records — lane
    /// and process names — are not counted).
    pub fn events(&self) -> usize {
        self.spans
    }

    /// Name a process row (a device in the pool timeline, a kernel in the
    /// wave timeline).
    pub fn process_name(&mut self, pid: u64, name: &str) {
        self.events.push(obj(&[
            ("name", "process_name".into()),
            ("ph", "M".into()),
            ("pid", pid.into()),
            ("args", obj(&[("name", name.into())])),
        ]));
    }

    /// Name a thread lane within a process row (a pool slot, or an SM).
    pub fn thread_name(&mut self, pid: u64, tid: u64, name: &str) {
        self.events.push(obj(&[
            ("name", "thread_name".into()),
            ("ph", "M".into()),
            ("pid", pid.into()),
            ("tid", tid.into()),
            ("args", obj(&[("name", name.into())])),
        ]));
    }

    /// A complete event: a span of `dur` timeline units starting at `ts`.
    pub fn complete(
        &mut self,
        pid: u64,
        tid: u64,
        name: &str,
        ts: u64,
        dur: u64,
        args: &[(&str, Json)],
    ) {
        self.spans += 1;
        self.events.push(obj(&[
            ("name", name.into()),
            ("ph", "X".into()),
            ("pid", pid.into()),
            ("tid", tid.into()),
            ("ts", ts.into()),
            ("dur", dur.into()),
            ("args", obj(args)),
        ]));
    }

    /// A thread-scoped instant event (a zero-width marker on one lane).
    pub fn instant(&mut self, pid: u64, tid: u64, name: &str, ts: u64, args: &[(&str, Json)]) {
        self.spans += 1;
        self.events.push(obj(&[
            ("name", name.into()),
            ("ph", "i".into()),
            ("s", "t".into()),
            ("pid", pid.into()),
            ("tid", tid.into()),
            ("ts", ts.into()),
            ("args", obj(args)),
        ]));
    }

    /// Render the full trace document.
    pub fn render(&self) -> String {
        obj(&[
            ("displayTimeUnit", "ns".into()),
            ("truncated", self.truncated.into()),
            ("traceEvents", Json::Arr(self.events.clone())),
        ])
        .render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn trace_renders_and_counts_spans() {
        let mut tr = ChromeTrace::new();
        tr.process_name(1, "v100");
        tr.thread_name(1, 0, "device 0");
        tr.complete(1, 0, "batch", 100, 50, &[("count", 3u64.into())]);
        tr.instant(1, 0, "miss", 160, &[("id", 7u64.into())]);
        assert_eq!(tr.events(), 2, "metadata records are not timeline events");
        assert!(!tr.truncated());
        let doc = parse(&tr.render()).unwrap();
        assert_eq!(doc.get("truncated"), Some(&Json::Bool(false)));
        let evs = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(evs.len(), 4);
        assert_eq!(evs[2].get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(evs[2].get("ts").unwrap().as_f64(), Some(100.0));
        assert_eq!(evs[2].get("dur").unwrap().as_f64(), Some(50.0));
        assert_eq!(evs[3].get("ph").unwrap().as_str(), Some("i"));
        assert_eq!(
            evs[3].get("args").unwrap().get("id").unwrap().as_f64(),
            Some(7.0)
        );
    }

    #[test]
    fn truncation_flag_is_sticky() {
        let mut tr = ChromeTrace::new();
        tr.set_truncated(false);
        assert!(!tr.truncated());
        tr.set_truncated(true);
        tr.set_truncated(false);
        assert!(tr.truncated());
        assert!(tr.render().contains("\"truncated\":true"));
    }
}
