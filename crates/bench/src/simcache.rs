//! `simcache` — the persistent, content-addressed result cache behind the
//! sweep engine ([`crate::sweep`]).
//!
//! Every cacheable grid point carries a [`CacheKey`]: a stable 128-bit
//! digest (see [`gpusim::digest`]) of everything its simulation depends on —
//! device spec, assembled program bytes, launch configuration and
//! [`gpusim::TimingOptions`]. The point's result (a [`Json`] record) is
//! stored under `<cache-dir>/<hex-digest>.json`, one file per point, so:
//!
//! * a warm rerun of a figure binary loads every point from disk and is
//!   near-instant;
//! * touching one kernel emitter changes that kernel's program bytes, hence
//!   only the affected points' digests — everything else still hits;
//! * the cache needs no invalidation logic, no manifest and no locking
//!   beyond atomic file replacement (write-to-temp + rename), because a key
//!   can only ever map to one value.
//!
//! The default location is `target/simcache/`; every experiment binary
//! accepts `--cache-dir PATH` to relocate it and `--no-cache` to bypass it
//! (see [`crate::sweep::SweepOptions`]).

use std::path::{Path, PathBuf};

use gpusim::KernelTiming;
use wino_core::{Algo, AlgoTiming};

use crate::json::{obj, parse, Json};

/// Content address of one sweep point: 32 lowercase hex chars from
/// [`gpusim::Digest`]. Also usable directly as a filename stem.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheKey(String);

impl CacheKey {
    /// Wrap a finished digest. Accepts any non-empty string of `[0-9a-f]`;
    /// panics otherwise — keys must come from a digest, not free text.
    pub fn new(hex: String) -> Self {
        assert!(
            !hex.is_empty() && hex.bytes().all(|c| c.is_ascii_hexdigit()),
            "cache key must be a hex digest, got {hex:?}"
        );
        CacheKey(hex.to_ascii_lowercase())
    }

    /// Finish a [`gpusim::Digest`] into a key.
    pub fn from_digest(d: &gpusim::Digest) -> Self {
        CacheKey(d.hex())
    }

    pub fn as_str(&self) -> &str {
        &self.0
    }
}

/// A directory of `<key>.json` result files.
pub struct Store {
    dir: PathBuf,
}

impl Store {
    /// Open (and create, on first write) a store at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Store { dir: dir.into() }
    }

    /// The default store location, shared by all experiment binaries.
    pub fn default_dir() -> PathBuf {
        PathBuf::from("target/simcache")
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_of(&self, key: &CacheKey) -> PathBuf {
        self.dir.join(format!("{}.json", key.as_str()))
    }

    /// Look a key up; `None` on miss or an unreadable/corrupt entry (a
    /// corrupt file is treated as a miss and overwritten on store).
    pub fn load(&self, key: &CacheKey) -> Option<Json> {
        let text = std::fs::read_to_string(self.path_of(key)).ok()?;
        parse(&text).ok()
    }

    /// Persist a value. Failures to write are reported on stderr but not
    /// fatal — a broken cache must never break an experiment run.
    pub fn store(&self, key: &CacheKey, value: &Json) {
        if let Err(e) = self.try_store(key, value) {
            eprintln!(
                "[simcache] warning: failed to store {}: {e}",
                self.path_of(key).display()
            );
        }
    }

    /// Delete a key if present. Needed by eviction policies layered on the
    /// store (the serve plan cache's LRU cap); a plain content-addressed
    /// cache never calls this. Removal failures are ignored — the entry
    /// simply survives until the next eviction pass.
    pub fn remove(&self, key: &CacheKey) {
        let _ = std::fs::remove_file(self.path_of(key));
    }

    fn try_store(&self, key: &CacheKey, value: &Json) -> std::io::Result<()> {
        std::fs::create_dir_all(&self.dir)?;
        let final_path = self.path_of(key);
        // Atomic publish: concurrent writers of the same key (same content,
        // by construction) race benignly on the rename. The temp name must
        // be unique per *writer*, not just per process — sweep workers are
        // threads, and two threads writing the same key with a pid-only
        // suffix would interleave write/rename on one temp file (one rename
        // then fails with NotFound, losing a store). A process-wide counter
        // disambiguates them.
        static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let tmp = self.dir.join(format!(
            "{}.tmp.{}.{}",
            key.as_str(),
            std::process::id(),
            seq
        ));
        std::fs::write(&tmp, value.render() + "\n")?;
        std::fs::rename(&tmp, &final_path)
    }
}

/// Serialize a [`KernelTiming`] to a JSON object. The per-line stall
/// profile is intentionally dropped: it is an observability artifact, large,
/// and never consulted by the experiment tables.
pub fn timing_to_json(t: &KernelTiming) -> Json {
    obj(&[
        ("wave_cycles", t.wave_cycles.into()),
        ("waves", t.waves.into()),
        ("blocks_per_sm", t.blocks_per_sm.into()),
        ("total_blocks", t.total_blocks.into()),
        ("busy_sms", t.busy_sms.into()),
        ("time_s", t.time_s.into()),
        ("flops", t.flops.into()),
        ("tflops", t.tflops.into()),
        ("sol_pct", t.sol_pct.into()),
        ("sol_total_pct", t.sol_total_pct.into()),
        ("issue_util_pct", t.issue_util_pct.into()),
        ("dram_bytes", t.dram_bytes.into()),
        ("dram_time_s", t.dram_time_s.into()),
        ("region_cycles", t.region_cycles.into()),
        (
            "reg_bank_conflict_cycles",
            t.reg_bank_conflict_cycles.into(),
        ),
        ("smem_conflict_cycles", t.smem_conflict_cycles.into()),
        ("yield_switch_cycles", t.yield_switch_cycles.into()),
        (
            "idle_breakdown",
            Json::Arr(t.idle_breakdown.iter().map(|&v| v.into()).collect()),
        ),
    ])
}

/// Reconstruct a [`KernelTiming`] from [`timing_to_json`] output. Returns
/// `None` if any field is missing or mistyped (the observability artifacts
/// `profile` and `counters` are restored as `None` — they are never cached,
/// which is what lets instrumented and plain runs share a cache key; see
/// `gpusim::digest`).
pub fn timing_from_json(j: &Json) -> Option<KernelTiming> {
    let f = |k: &str| j.get(k)?.as_f64();
    let u = |k: &str| Some(f(k)? as u64);
    let idle = j.get("idle_breakdown")?.as_arr()?;
    if idle.len() != 5 {
        return None;
    }
    let mut idle_breakdown = [0u64; 5];
    for (slot, v) in idle_breakdown.iter_mut().zip(idle) {
        *slot = v.as_f64()? as u64;
    }
    Some(KernelTiming {
        wave_cycles: u("wave_cycles")?,
        waves: u("waves")?,
        blocks_per_sm: u("blocks_per_sm")? as u32,
        total_blocks: u("total_blocks")?,
        busy_sms: u("busy_sms")? as u32,
        time_s: f("time_s")?,
        flops: f("flops")?,
        tflops: f("tflops")?,
        sol_pct: f("sol_pct")?,
        sol_total_pct: f("sol_total_pct")?,
        issue_util_pct: f("issue_util_pct")?,
        dram_bytes: u("dram_bytes")?,
        dram_time_s: f("dram_time_s")?,
        region_cycles: u("region_cycles")?,
        reg_bank_conflict_cycles: u("reg_bank_conflict_cycles")?,
        smem_conflict_cycles: u("smem_conflict_cycles")?,
        yield_switch_cycles: u("yield_switch_cycles")?,
        idle_breakdown,
        profile: None,
        counters: None,
    })
}

/// Serialize a whole [`AlgoTiming`] (the [`wino_core::Conv::time`] result):
/// algorithm, totals, phase breakdown, and the dominant kernel's
/// [`KernelTiming`] when one ran.
pub fn algo_timing_to_json(t: &AlgoTiming) -> Json {
    obj(&[
        ("algo", t.algo.name().into()),
        ("time_s", t.time_s.into()),
        ("tflops_effective", t.tflops_effective.into()),
        (
            "kernel",
            match &t.kernel {
                Some(k) => timing_to_json(k),
                None => Json::Null,
            },
        ),
        (
            "phases",
            Json::Arr(
                t.phases
                    .iter()
                    .map(|(name, s)| obj(&[("phase", name.as_str().into()), ("s", (*s).into())]))
                    .collect(),
            ),
        ),
    ])
}

/// Reconstruct an [`AlgoTiming`] from [`algo_timing_to_json`] output.
pub fn algo_timing_from_json(j: &Json) -> Option<AlgoTiming> {
    let name = j.get("algo")?.as_str()?;
    let algo = Algo::ALL.into_iter().find(|a| a.name() == name)?;
    let kernel = match j.get("kernel")? {
        Json::Null => None,
        k => Some(timing_from_json(k)?),
    };
    let mut phases = Vec::new();
    for p in j.get("phases")?.as_arr()? {
        phases.push((p.get("phase")?.as_str()?.to_string(), p.get("s")?.as_f64()?));
    }
    Some(AlgoTiming {
        algo,
        time_s: j.get("time_s")?.as_f64()?,
        tflops_effective: j.get("tflops_effective")?.as_f64()?,
        kernel,
        phases,
    })
}

/// [`Store`] as a [`serve::plan::PlanStorage`]: text values ride in a JSON
/// string under their content address, so serve plans and tuned schedules
/// share the simcache directory (and its atomic write-and-rename
/// discipline) with the sweep results. Used by both the `serve` binary
/// (plan cache + schedule lookup) and the `tune` binary (schedule
/// publishing), which is what lets "tune once, serve forever" cross
/// process boundaries.
pub struct SimStore(pub Store);

impl serve::plan::PlanStorage for SimStore {
    fn load(&self, key: &str) -> Option<String> {
        match self.0.load(&CacheKey::new(key.to_string())) {
            Some(Json::Str(s)) => Some(s),
            _ => None,
        }
    }

    fn store(&self, key: &str, value: &str) {
        self.0.store(
            &CacheKey::new(key.to_string()),
            &Json::Str(value.to_string()),
        );
    }

    fn remove(&self, key: &str) {
        self.0.remove(&CacheKey::new(key.to_string()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_validates_hex() {
        CacheKey::new("0123abcdef".into());
    }

    #[test]
    #[should_panic(expected = "hex digest")]
    fn key_rejects_free_text() {
        CacheKey::new("../escape".into());
    }

    /// Regression: two threads storing the same key concurrently must both
    /// succeed. With the old pid-only temp-file suffix they shared one temp
    /// path; the loser's rename failed with NotFound and the store was
    /// dropped (reported as a `[simcache] warning` and a cold next run).
    #[test]
    fn concurrent_same_key_stores_do_not_collide() {
        let dir = std::env::temp_dir().join(format!(
            "simcache-race-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let store = Store::new(&dir);
        let key = CacheKey::new("cafe0123".into());
        let v = obj(&[("time_us", 1.5.into())]);
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    for _ in 0..200 {
                        store
                            .try_store(&key, &v)
                            .expect("concurrent same-key store must not fail");
                    }
                });
            }
        });
        assert_eq!(store.load(&key), Some(v));
        // No leaked temp files: every writer renamed its own file away.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "leaked temp files: {leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn store_round_trips() {
        let dir = std::env::temp_dir().join(format!("simcache-test-{}", std::process::id()));
        let store = Store::new(&dir);
        let key = CacheKey::new("deadbeef".into());
        assert_eq!(store.load(&key), None);
        let v = obj(&[("time_us", 12.5.into()), ("label", "x".into())]);
        store.store(&key, &v);
        assert_eq!(store.load(&key), Some(v));
        std::fs::remove_dir_all(&dir).ok();
    }
}
