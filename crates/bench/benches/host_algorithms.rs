//! Micro-benchmarks of the host-side (CPU) algorithm implementations: the
//! Winograd transforms and each reference convolution.

use bench::harness::Harness;
use tensor::{LayoutKind, Tensor4};
use wino_core::fft::{conv2d_fft, fft2d, Cpx};
use wino_core::im2col::conv2d_gemm;
use wino_core::transforms::{Mat, Variant};
use wino_core::winograd_host::conv2d_winograd;
use wino_core::{conv2d_direct, ConvProblem};

fn transforms(h: &Harness) {
    for v in [Variant::F2x2, Variant::F4x4, Variant::F6x6] {
        let tr = v.transform();
        let tile = Mat::new(
            tr.t,
            tr.t,
            (0..tr.t * tr.t).map(|i| i as f32 * 0.1).collect(),
        );
        let filt = Mat::new(3, 3, (0..9).map(|i| i as f32 * 0.2).collect());
        h.bench(
            &format!("winograd_tile_transforms/input_tile/{v:?}"),
            None,
            || tr.input_tile(std::hint::black_box(&tile)),
        );
        h.bench(
            &format!("winograd_tile_transforms/filter_tile/{v:?}"),
            None,
            || tr.filter_tile(std::hint::black_box(&filt)),
        );
    }
}

fn host_convolutions(h: &Harness) {
    let p = ConvProblem::resnet3x3(1, 16, 16, 16);
    let input = Tensor4::random(LayoutKind::Nchw, [p.n, p.c, p.h, p.w], -1.0, 1.0, 1);
    let filter = Tensor4::random(LayoutKind::Kcrs, [p.k, p.c, 3, 3], -1.0, 1.0, 2);
    h.bench("host_convolution_16c_16x16/direct", None, || {
        conv2d_direct(&p, &input, &filter)
    });
    h.bench("host_convolution_16c_16x16/winograd_f2", None, || {
        conv2d_winograd(&p, &input, &filter, Variant::F2x2)
    });
    h.bench("host_convolution_16c_16x16/winograd_f4", None, || {
        conv2d_winograd(&p, &input, &filter, Variant::F4x4)
    });
    h.bench("host_convolution_16c_16x16/im2col_gemm", None, || {
        conv2d_gemm(&p, &input, &filter)
    });
    h.bench("host_convolution_16c_16x16/fft", None, || {
        conv2d_fft(&p, &input, &filter)
    });
}

fn fft_kernels(h: &Harness) {
    for size in [16usize, 32, 64] {
        let data: Vec<Cpx> = (0..size * size)
            .map(|i| Cpx::new((i as f32).sin(), 0.0))
            .collect();
        h.bench(&format!("fft2d/{size}"), None, || {
            let mut buf = data.clone();
            fft2d(&mut buf, size, false);
            buf
        });
    }
}

fn main() {
    let h = Harness::from_args();
    transforms(&h);
    host_convolutions(&h);
    fft_kernels(&h);
}
