//! Criterion micro-benchmarks of the host-side (CPU) algorithm
//! implementations: the Winograd transforms and each reference convolution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tensor::{LayoutKind, Tensor4};
use wino_core::fft::{conv2d_fft, fft2d, Cpx};
use wino_core::im2col::conv2d_gemm;
use wino_core::transforms::{Mat, Variant};
use wino_core::winograd_host::conv2d_winograd;
use wino_core::{conv2d_direct, ConvProblem};

fn transforms(c: &mut Criterion) {
    let mut g = c.benchmark_group("winograd_tile_transforms");
    for v in [Variant::F2x2, Variant::F4x4, Variant::F6x6] {
        let tr = v.transform();
        let tile = Mat::new(tr.t, tr.t, (0..tr.t * tr.t).map(|i| i as f32 * 0.1).collect());
        let filt = Mat::new(3, 3, (0..9).map(|i| i as f32 * 0.2).collect());
        g.bench_with_input(BenchmarkId::new("input_tile", format!("{v:?}")), &tile, |b, t| {
            b.iter(|| tr.input_tile(std::hint::black_box(t)))
        });
        g.bench_with_input(BenchmarkId::new("filter_tile", format!("{v:?}")), &filt, |b, f| {
            b.iter(|| tr.filter_tile(std::hint::black_box(f)))
        });
    }
    g.finish();
}

fn host_convolutions(c: &mut Criterion) {
    let p = ConvProblem::resnet3x3(1, 16, 16, 16);
    let input = Tensor4::random(LayoutKind::Nchw, [p.n, p.c, p.h, p.w], -1.0, 1.0, 1);
    let filter = Tensor4::random(LayoutKind::Kcrs, [p.k, p.c, 3, 3], -1.0, 1.0, 2);
    let mut g = c.benchmark_group("host_convolution_16c_16x16");
    g.bench_function("direct", |b| b.iter(|| conv2d_direct(&p, &input, &filter)));
    g.bench_function("winograd_f2", |b| {
        b.iter(|| conv2d_winograd(&p, &input, &filter, Variant::F2x2))
    });
    g.bench_function("winograd_f4", |b| {
        b.iter(|| conv2d_winograd(&p, &input, &filter, Variant::F4x4))
    });
    g.bench_function("im2col_gemm", |b| b.iter(|| conv2d_gemm(&p, &input, &filter)));
    g.bench_function("fft", |b| b.iter(|| conv2d_fft(&p, &input, &filter)));
    g.finish();
}

fn fft_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft2d");
    for size in [16usize, 32, 64] {
        let data: Vec<Cpx> = (0..size * size).map(|i| Cpx::new((i as f32).sin(), 0.0)).collect();
        g.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, d| {
            b.iter(|| {
                let mut buf = d.clone();
                fft2d(&mut buf, size, false);
                buf
            })
        });
    }
    g.finish();
}

criterion_group!(benches, transforms, host_convolutions, fft_kernels);
criterion_main!(benches);
