//! Criterion micro-benchmarks of the assembler: emit, encode, decode,
//! assemble and disassemble rates over the flagship generated kernel.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use kernels::{FusedConfig, FusedKernel};
use sass::{assemble, decode, disassemble, encode};

fn assembler(c: &mut Criterion) {
    let kern = FusedKernel::emit(FusedConfig::ours(64, 28, 28, 32, 64));
    let n = kern.module.insts.len() as u64;
    let words: Vec<u128> = kern.module.insts.iter().map(encode).collect();
    let text = disassemble(&kern.module.insts);

    let mut g = c.benchmark_group("assembler");
    g.throughput(Throughput::Elements(n));
    g.bench_function("emit_fused_kernel", |b| {
        b.iter(|| FusedKernel::emit(FusedConfig::ours(64, 28, 28, 32, 64)))
    });
    g.bench_function("encode", |b| {
        b.iter(|| kern.module.insts.iter().map(encode).collect::<Vec<_>>())
    });
    g.bench_function("decode", |b| {
        b.iter(|| words.iter().map(|&w| decode(w).unwrap()).collect::<Vec<_>>())
    });
    g.bench_function("disassemble", |b| b.iter(|| disassemble(&kern.module.insts)));
    g.bench_function("assemble_text", |b| b.iter(|| assemble(&text).unwrap()));
    g.bench_function("cubin_round_trip", |b| {
        b.iter(|| sass::Module::from_cubin(&kern.module.to_cubin()).unwrap())
    });
    g.finish();
}

criterion_group!(benches, assembler);
criterion_main!(benches);
