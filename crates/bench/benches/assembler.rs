//! Micro-benchmarks of the assembler: emit, encode, decode, assemble and
//! disassemble rates over the flagship generated kernel.

use bench::harness::Harness;
use kernels::{FusedConfig, FusedKernel};
use sass::{assemble, decode, disassemble, encode};

fn main() {
    let h = Harness::from_args();
    let kern = FusedKernel::emit(FusedConfig::ours(64, 28, 28, 32, 64));
    let n = kern.module.insts.len() as u64;
    let words: Vec<u128> = kern.module.insts.iter().map(encode).collect();
    let text = disassemble(&kern.module.insts);

    h.bench("assembler/emit_fused_kernel", Some(n), || {
        FusedKernel::emit(FusedConfig::ours(64, 28, 28, 32, 64))
    });
    h.bench("assembler/encode", Some(n), || {
        kern.module.insts.iter().map(encode).collect::<Vec<_>>()
    });
    h.bench("assembler/decode", Some(n), || {
        words
            .iter()
            .map(|&w| decode(w).unwrap())
            .collect::<Vec<_>>()
    });
    h.bench("assembler/disassemble", Some(n), || {
        disassemble(&kern.module.insts)
    });
    h.bench("assembler/assemble_text", Some(n), || {
        assemble(&text).unwrap()
    });
    h.bench("assembler/cubin_round_trip", Some(n), || {
        sass::Module::from_cubin(&kern.module.to_cubin()).unwrap()
    });
}
