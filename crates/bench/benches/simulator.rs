//! Micro-benchmarks of the simulator itself: functional execution throughput
//! and the cycle-level timing model.

use bench::harness::Harness;
use gpusim::{DeviceSpec, Gpu, LaunchDims, ParamBuilder, TimingOptions};
use kernels::{FusedConfig, FusedKernel};

fn functional_block_throughput(h: &Harness) {
    // One block of the fused kernel, C=32: ~45k simulated warp-instructions.
    let cfg = FusedConfig::ours(32, 4, 4, 32, 64);
    let kern = FusedKernel::emit(cfg);
    let insts_per_launch = 4u64 * 8 * 6000; // rough, for ops/sec display
    h.bench(
        "functional_simulation/fused_block_c32",
        Some(insts_per_launch),
        || {
            let mut gpu = Gpu::new(DeviceSpec::v100(), 1 << 22);
            let d_in = gpu.alloc((32 * 4 * 4 * 32) as u64 * 4);
            let d_tf = gpu.alloc((32 * 16 * 64) as u64 * 4);
            let d_out = gpu.alloc((64 * 4 * 4 * 32) as u64 * 4);
            let params = kern.params(d_in, d_tf, d_out);
            gpu.launch(&kern.module, kern.launch_dims(), &params)
                .unwrap();
            gpu
        },
    );
}

fn timing_model_wave(h: &Harness) {
    let mut cfg = FusedConfig::ours(64, 28, 28, 32, 64);
    cfg.main_loop_only = true;
    let kern = FusedKernel::emit(cfg);
    h.bench("timing_model_one_wave_c64", None, || {
        let mut gpu = Gpu::new(DeviceSpec::rtx2070(), 1 << 26);
        let d_in = gpu.alloc((64 * 28 * 28 * 32) as u64 * 4);
        let d_tf = gpu.alloc((64 * 16 * 64) as u64 * 4);
        let d_out = gpu.alloc((64 * 28 * 28 * 32) as u64 * 4);
        let params = kern.params(d_in, d_tf, d_out);
        gpusim::timing::time_kernel(
            &mut gpu,
            &kern.module,
            kern.launch_dims(),
            &params,
            TimingOptions {
                region: Some(kern.region),
                ..Default::default()
            },
        )
        .unwrap()
    });
}

fn block_runner(h: &Harness) {
    // A tight synthetic loop: measures raw interpreter speed.
    let m = sass::assemble(
        r#"
.kernel spin
    --:-:-:Y:1  MOV R1, 0x400;
LOOP:
    --:-:-:Y:1  FFMA R2, R2, R2, R3;
    --:-:-:Y:1  FFMA R4, R4, R4, R5;
    --:-:-:Y:1  IADD3 R1, R1, -1, RZ;
    --:-:-:Y:4  ISETP.GT.AND P0, PT, R1, 0, PT;
    --:-:-:Y:5  @P0 BRA `(LOOP);
    --:-:-:Y:5  EXIT;
"#,
    )
    .unwrap();
    h.bench("interpreter/alu_loop_block", Some(1024 * 5 * 8), || {
        let mut gpu = Gpu::new(DeviceSpec::v100(), 1 << 16);
        gpu.launch(&m, LaunchDims::linear(1, 256), &ParamBuilder::new().build())
            .unwrap();
        gpu
    });
}

fn main() {
    let h = Harness::from_args();
    functional_block_throughput(&h);
    timing_model_wave(&h);
    block_runner(&h);
}
