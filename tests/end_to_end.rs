//! Cross-crate integration: every algorithm in the public API produces the
//! direct-convolution result, workspace queries are consistent, and the
//! timing pipeline runs end to end.

use winograd_gpu::gpusim::DeviceSpec;
use winograd_gpu::tensor::{allclose, LayoutKind, Tensor4};
use winograd_gpu::wino_core::{conv2d_direct, Algo, Conv, ConvProblem};

fn fixture(p: &ConvProblem) -> (Tensor4, Tensor4, Tensor4) {
    let input = Tensor4::random(LayoutKind::Nchw, [p.n, p.c, p.h, p.w], -1.0, 1.0, 11);
    let filter = Tensor4::random(LayoutKind::Kcrs, [p.k, p.c, 3, 3], -1.0, 1.0, 12);
    let reference = conv2d_direct(p, &input, &filter);
    (input, filter, reference)
}

#[test]
fn every_algorithm_matches_direct() {
    let p = ConvProblem::resnet3x3(32, 8, 8, 64);
    let (input, filter, reference) = fixture(&p);
    let conv = Conv::new(p, DeviceSpec::v100());
    for algo in Algo::ALL {
        let got = conv.run(algo, &input, &filter);
        assert!(
            allclose(reference.as_slice(), got.output.as_slice(), 5e-3, 5e-3),
            "{} diverged from the direct reference",
            algo.name()
        );
    }
}

#[test]
fn both_devices_agree_functionally() {
    // The simulated device changes timing, never results.
    let p = ConvProblem::resnet3x3(32, 8, 7, 64);
    let (input, filter, _) = fixture(&p);
    let a = Conv::new(p, DeviceSpec::v100()).run(Algo::OursFused, &input, &filter);
    let b = Conv::new(p, DeviceSpec::rtx2070()).run(Algo::OursFused, &input, &filter);
    assert_eq!(a.output.as_slice(), b.output.as_slice());
}

#[test]
fn timing_pipeline_reports_consistent_metrics() {
    let p = ConvProblem::resnet3x3(32, 128, 14, 128);
    let conv = Conv::new(p, DeviceSpec::rtx2070());
    let t = conv.time(Algo::OursFused);
    // Phases sum to the total.
    let sum: f64 = t.phases.iter().map(|(_, s)| s).sum();
    assert!((sum - t.time_s).abs() < 1e-12);
    // Effective TFLOPS below device peak and above zero.
    assert!(t.tflops_effective > 0.0);
    let k = t.kernel.expect("kernel timing present");
    assert!(k.sol_pct > 10.0 && k.sol_pct <= 100.0, "SOL {}", k.sol_pct);
    assert!(
        k.sol_total_pct <= k.sol_pct + 1.0,
        "total {} vs main {}",
        k.sol_total_pct,
        k.sol_pct
    );
    assert!(k.wave_cycles > 0 && k.waves >= 1);
}

#[test]
fn fused_winograd_beats_gemm_and_cudnn_like() {
    // The headline claims (Tables 2 and 6) on one mid-size layer per device.
    let p = ConvProblem::resnet3x3(32, 128, 28, 128);
    for dev in [DeviceSpec::rtx2070(), DeviceSpec::v100()] {
        let conv = Conv::new(p, dev.clone());
        let ours = conv.time(Algo::OursFused).time_s;
        let cudnn = conv.time(Algo::CudnnWinograd).time_s;
        let gemm = conv.time(Algo::ImplicitPrecompGemm).time_s;
        assert!(
            ours < cudnn,
            "{}: ours {} vs cudnn {}",
            dev.name,
            ours,
            cudnn
        );
        assert!(ours < gemm, "{}: ours {} vs gemm {}", dev.name, ours, gemm);
        // §7.1: the speedup over cuDNN is larger on Turing than on Volta.
        if dev.name == "RTX2070" {
            assert!(cudnn / ours > 1.3, "{}: ratio {}", dev.name, cudnn / ours);
        }
    }
}

#[test]
fn workspace_hierarchy_matches_fig14() {
    let p = ConvProblem::resnet3x3(32, 512, 7, 512); // Conv5N32
    let conv = Conv::new(p, DeviceSpec::v100());
    let ours = conv.workspace_bytes(Algo::OursFused);
    // §7.3: 16 MB transformed filter for Conv5.
    assert_eq!(ours, 16 * 512 * 512 * 4);
    // Fig. 14 ordering for Conv5N32: FFT_TILING > FFT > OURS-sized entries.
    let fft = conv.workspace_bytes(Algo::Fft);
    let fft_tiling = conv.workspace_bytes(Algo::FftTiling);
    assert!(fft_tiling > fft, "tiling {fft_tiling} vs fft {fft}");
    assert!(fft > ours);
    assert_eq!(conv.workspace_bytes(Algo::ImplicitGemm), 0);
}

#[test]
fn conv5_prefers_nonfused_winograd() {
    // Fig. 12/13 observation 6: on Conv5, WINOGRAD_NONFUSED (F(4×4)) beats
    // the fused F(2×2) kernels; on Conv2 it does not.
    let dev = DeviceSpec::rtx2070();
    let conv5 = Conv::new(ConvProblem::resnet3x3(64, 512, 7, 512), dev.clone());
    let ours5 = conv5.time(Algo::OursFused).time_s;
    let nf5 = conv5.time(Algo::WinogradNonfused).time_s;
    assert!(
        nf5 < ours5 * 1.25,
        "Conv5: non-fused {nf5} should rival fused {ours5}"
    );
    let conv2 = Conv::new(ConvProblem::resnet3x3(32, 64, 56, 64), dev);
    let ours2 = conv2.time(Algo::OursFused).time_s;
    let nf2 = conv2.time(Algo::WinogradNonfused).time_s;
    assert!(
        ours2 < nf2,
        "Conv2: fused {ours2} should beat non-fused {nf2}"
    );
}
