//! Integration of the assembler toolchain with the simulator: text source →
//! module → cubin bytes → reload → execute, plus the generated-kernel path
//! (emitter → disassembly → reassembly → identical execution).

use winograd_gpu::gpusim::{DeviceSpec, Gpu, LaunchDims, ParamBuilder};
use winograd_gpu::kernels::{FusedConfig, FusedKernel};
use winograd_gpu::sass::{assemble, disassemble, Module};

#[test]
fn text_to_cubin_to_execution() {
    let src = r#"
.kernel scale
.params 16
    --:-:-:Y:1  S2R R0, SR_TID.X;
    --:-:-:Y:1  S2R R1, SR_CTAID.X;
    --:-:-:Y:6  MOV R4, c[0x0][0x160];
    --:-:-:Y:6  MOV R5, c[0x0][0x164];
    --:-:-:Y:6  IMAD R0, R1, 0x40, R0;
    --:-:-:Y:6  IMAD.WIDE.U32 R2, R0, 0x4, R4;
    --:-:0:-:2  LDG.E R6, [R2];
    01:-:-:Y:4  FMUL R6, R6, 3.0;
    --:-:-:Y:2  STG.E [R2], R6;
    --:-:-:Y:5  EXIT;
"#;
    let module = assemble(src).unwrap();
    let bytes = module.to_cubin();
    let reloaded = Module::from_cubin(&bytes).unwrap();
    assert_eq!(reloaded, module);

    let mut gpu = Gpu::new(DeviceSpec::v100(), 1 << 20);
    let data: Vec<f32> = (0..256).map(|i| i as f32).collect();
    let p = gpu.alloc_upload_f32(&data);
    let params = ParamBuilder::new().push_ptr(p).build();
    gpu.launch(&reloaded, LaunchDims::linear(4, 64), &params)
        .unwrap();
    let out = gpu.mem.download_f32(p, 256).unwrap();
    for (i, v) in out.iter().enumerate() {
        assert_eq!(*v, 3.0 * i as f32);
    }
}

/// The flagship kernel survives disassembly + reassembly bit-exactly and
/// still produces correct results — the full TuringAs-style workflow over
/// ~2000 generated instructions.
#[test]
fn fused_kernel_survives_text_round_trip() {
    let cfg = FusedConfig::ours(8, 6, 6, 32, 64);
    let kern = FusedKernel::emit(cfg);
    let text = disassemble(&kern.module.insts);
    let re = assemble(&text).unwrap_or_else(|e| panic!("reassembly failed: {e}"));
    assert_eq!(re.insts.len(), kern.module.insts.len());
    assert_eq!(re.insts, kern.module.insts);

    // Execute the reassembled module (metadata comes from the original).
    let module = Module {
        info: kern.module.info.clone(),
        insts: re.insts,
    };
    let mut gpu = Gpu::new(DeviceSpec::v100(), 1 << 26);
    let n_in = 8 * 6 * 6 * 32;
    let input: Vec<f32> = (0..n_in)
        .map(|i| ((i * 37) % 13) as f32 / 7.0 - 0.5)
        .collect();
    let d_in = gpu.alloc_upload_f32(&input);
    let tf: Vec<f32> = (0..8 * 16 * 64)
        .map(|i| ((i * 41) % 11) as f32 / 5.0 - 1.0)
        .collect();
    let d_tf = gpu.alloc_upload_f32(&tf);
    let d_out = gpu.alloc(64 * 6 * 6 * 32 * 4);
    let params = kern.params(d_in, d_tf, d_out);

    gpu.launch(&module, kern.launch_dims(), &params).unwrap();
    let a = gpu.mem.download_f32(d_out, 64 * 6 * 6 * 32).unwrap();

    // Same launch with the originally emitted module must agree bit-exactly.
    let mut gpu2 = Gpu::new(DeviceSpec::v100(), 1 << 26);
    let d_in2 = gpu2.alloc_upload_f32(&input);
    let d_tf2 = gpu2.alloc_upload_f32(&tf);
    let d_out2 = gpu2.alloc(64 * 6 * 6 * 32 * 4);
    let params2 = kern.params(d_in2, d_tf2, d_out2);
    gpu2.launch(&kern.module, kern.launch_dims(), &params2)
        .unwrap();
    let b = gpu2.mem.download_f32(d_out2, 64 * 6 * 6 * 32).unwrap();
    assert_eq!(a, b);
}

/// The cubin container rejects tampered bytes rather than misexecuting.
#[test]
fn cubin_is_validated_on_load() {
    let kern = FusedKernel::emit(FusedConfig::ours(8, 4, 4, 32, 64));
    let mut bytes = kern.module.to_cubin();
    bytes[0] ^= 0xff;
    assert!(Module::from_cubin(&bytes).is_err());
}
