//! Sweep all 3×3 ResNet layers (the paper's Table 1 workload) on both
//! simulated devices, reporting our kernel against the cuDNN-like baseline —
//! a miniature of the paper's headline evaluation.
//!
//! ```sh
//! cargo run --release --example resnet_sweep
//! ```

use winograd_gpu::gpusim::DeviceSpec;
use winograd_gpu::wino_core::resnet::RESNET_LAYERS;
use winograd_gpu::wino_core::{Algo, Conv};

fn main() {
    let batch = 32;
    for dev in [DeviceSpec::rtx2070(), DeviceSpec::v100()] {
        println!(
            "== {} (peak {:.1} TFLOPS fp32) ==",
            dev.name,
            dev.peak_fp32_flops() / 1e12
        );
        println!(
            "{:<10} {:>12} {:>12} {:>9} {:>14}",
            "layer", "ours (us)", "cuDNN (us)", "speedup", "main-loop SOL%"
        );
        for layer in RESNET_LAYERS {
            let conv = Conv::new(layer.problem(batch), dev.clone());
            let ours = conv.time(Algo::OursFused);
            let cudnn = conv.time(Algo::CudnnWinograd);
            let sol = ours.kernel.as_ref().map(|k| k.sol_pct).unwrap_or(0.0);
            println!(
                "{:<10} {:>12.1} {:>12.1} {:>8.2}x {:>13.1}",
                layer.label(batch),
                ours.time_s * 1e6,
                cudnn.time_s * 1e6,
                cudnn.time_s / ours.time_s,
                sol
            );
        }
        println!();
    }
    println!("Paper reference (Table 6): RTX 2070 speedups 1.65x-2.65x, V100 1.23x-2.13x.");
}
