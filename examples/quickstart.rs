//! Quickstart: run the paper's fused Winograd convolution on the simulated
//! V100, check it against a direct-convolution reference, and report the
//! simulated performance.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use winograd_gpu::gpusim::DeviceSpec;
use winograd_gpu::tensor::{allclose, LayoutKind, Tensor4};
use winograd_gpu::wino_core::{conv2d_direct, Algo, Conv, ConvProblem};

fn main() {
    // ResNet Conv3 at batch 32 (Table 1): 3×3 filters, pad 1.
    let problem = ConvProblem::resnet3x3(
        /*n=*/ 32, /*c=*/ 128, /*hw=*/ 28, /*k=*/ 128,
    );
    println!(
        "problem: N={} C={} H=W={} K={} (3x3, pad 1)",
        problem.n, problem.c, problem.h, problem.k
    );

    let input = Tensor4::random(
        LayoutKind::Nchw,
        [problem.n, problem.c, problem.h, problem.w],
        -1.0,
        1.0,
        1,
    );
    let filter = Tensor4::random(LayoutKind::Kcrs, [problem.k, problem.c, 3, 3], -1.0, 1.0, 2);

    let conv = Conv::new(problem, DeviceSpec::v100());

    // 1. Functional run: the SASS kernel executes instruction-by-instruction
    //    on the simulator.
    println!("\nrunning the fused Winograd SASS kernel on the simulated V100...");
    let out = conv.run(Algo::OursFused, &input, &filter);

    // 2. Verify against the host direct convolution.
    let reference = conv2d_direct(&problem, &input, &filter);
    let ok = allclose(reference.as_slice(), out.output.as_slice(), 1e-3, 1e-3);
    println!(
        "correctness vs direct convolution: {}",
        if ok { "PASS" } else { "FAIL" }
    );
    assert!(ok);

    // 3. Time it with the cycle-level model, next to the baselines.
    println!("\nsimulated timings:");
    for algo in [
        Algo::OursFused,
        Algo::CudnnWinograd,
        Algo::ImplicitPrecompGemm,
    ] {
        let t = conv.time(algo);
        println!(
            "  {:<24} {:>8.1} us   {:>6.2} effective TFLOPS",
            algo.name(),
            t.time_s * 1e6,
            t.tflops_effective
        );
    }
    let ours = conv.time(Algo::OursFused);
    let cudnn = conv.time(Algo::CudnnWinograd);
    println!(
        "\nspeedup over the cuDNN-like fused Winograd: {:.2}x (paper Table 6: 1.2x-2.7x)",
        cudnn.time_s / ours.time_s
    );
}
