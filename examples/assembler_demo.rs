//! TuringAs-style assembler demo: write a kernel in SASS text, assemble it,
//! inspect the 128-bit encodings and the round-tripped disassembly, then
//! load and run the "cubin" on the simulator.
//!
//! ```sh
//! cargo run --release --example assembler_demo
//! ```

use winograd_gpu::gpusim::{DeviceSpec, Gpu, LaunchDims, ParamBuilder};
use winograd_gpu::sass::{assemble, disassemble, encode, Module};

/// y[i] = a·x[i] + y[i], one block, with the control-code machinery the
/// paper documents: wait barriers on the loads, stall counts on the FFMA,
/// and an operand-reuse flag.
const AXPY: &str = r#"
.kernel axpy
.params 24
.def idx   R0
.def xptr  R2
.def yptr  R4

    --:-:-:Y:1   S2R idx, SR_TID.X;
    --:-:-:Y:6   MOV R10, c[0x0][0x160];      // &x lo
    --:-:-:Y:6   MOV R11, c[0x0][0x164];      // &x hi
    --:-:-:Y:6   MOV R12, c[0x0][0x168];      // &y lo
    --:-:-:Y:6   MOV R13, c[0x0][0x16c];      // &y hi
    --:-:-:Y:6   MOV R14, c[0x0][0x170];      // a
    --:-:-:Y:6   IMAD.WIDE.U32 xptr, idx, 0x4, R10;
    --:-:-:Y:6   IMAD.WIDE.U32 yptr, idx, 0x4, R12;
    --:-:0:-:2   LDG.E R6, [xptr];            // sets wait barrier 0
    --:-:1:-:2   LDG.E R7, [yptr];            // sets wait barrier 1
    03:-:-:Y:4   FFMA R8, R6, R14.reuse, R7;  // waits on barriers 0|1
    --:-:-:Y:2   STG.E [yptr], R8;
    --:-:-:Y:5   EXIT;
"#;

fn main() {
    // Assemble.
    let module = assemble(AXPY).expect("assembly failed");
    println!(
        "assembled `{}`: {} instructions, {} registers/thread, {} B params\n",
        module.info.name,
        module.insts.len(),
        module.info.num_regs,
        module.info.param_bytes
    );

    // Show the 128-bit encodings (Figure 6 layout) next to the disassembly.
    println!("{:>32}  disassembly", "encoding (hex)");
    for inst in &module.insts {
        let word = encode(inst);
        println!(
            "{word:032x}  {}",
            winograd_gpu::sass::disasm::inst_text(inst)
        );
    }

    // Serialize to the cubin container and reload — the path a real
    // assembler user would take.
    let cubin = module.to_cubin();
    println!("\ncubin container: {} bytes", cubin.len());
    let reloaded = Module::from_cubin(&cubin).expect("cubin round-trip");
    assert_eq!(reloaded, module);

    // Round-trip through text as well.
    let text = disassemble(&module.insts);
    let reassembled = assemble(&text).expect("reassembly");
    assert_eq!(reassembled.insts, module.insts);
    println!("text round-trip: OK");

    // Run it.
    let n = 256u32;
    let mut gpu = Gpu::new(DeviceSpec::rtx2070(), 1 << 20);
    let x: Vec<f32> = (0..n).map(|i| i as f32).collect();
    let y: Vec<f32> = (0..n).map(|i| 1000.0 + i as f32).collect();
    let xp = gpu.alloc_upload_f32(&x);
    let yp = gpu.alloc_upload_f32(&y);
    let params = ParamBuilder::new()
        .push_ptr(xp)
        .push_ptr(yp)
        .push_f32(2.5)
        .build();
    gpu.launch(&reloaded, LaunchDims::linear(1, n), &params)
        .expect("launch");
    let out = gpu.mem.download_f32(yp, n as usize).unwrap();
    for (i, &v) in out.iter().enumerate() {
        assert_eq!(v, 2.5 * i as f32 + 1000.0 + i as f32);
    }
    println!("axpy on the simulator: OK (y[10] = {})", out[10]);
}
