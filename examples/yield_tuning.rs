//! Reproduce the §6.1 yield-flag experiment on a single layer: the same
//! main loop, scheduled with cuDNN's, NVCC's and the paper's "Natural"
//! yield strategies (a miniature of Figure 7).
//!
//! ```sh
//! cargo run --release --example yield_tuning
//! ```

use winograd_gpu::gpusim::DeviceSpec;
use winograd_gpu::kernels::YieldStrategy;
use winograd_gpu::wino_core::{Conv, ConvProblem};

fn main() {
    // Conv3N64 on the RTX 2070, like the paper's SASS experiments (§6).
    let problem = ConvProblem::resnet3x3(64, 128, 28, 128);
    let conv = Conv::new(problem, DeviceSpec::rtx2070());

    println!("main-loop throughput by yield strategy (simulated RTX 2070, Conv3N64)\n");
    let mut results = Vec::new();
    for (name, strat) in [
        ("cuDNN (clear every 7)", YieldStrategy::Cudnn),
        ("NVCC (clear every 8)", YieldStrategy::Nvcc),
        ("Natural (never clear)", YieldStrategy::Natural),
    ] {
        let mut cfg = conv.ours_config();
        cfg.yield_strategy = strat;
        let (timing, tflops) = conv.time_fused_mainloop(cfg);
        println!(
            "  {:<24} {:>6.2} TFLOPS   (yield-induced warp switches per wave: {})",
            name, tflops, timing.yield_switch_cycles
        );
        results.push(tflops);
    }
    println!(
        "\nNatural vs cuDNN strategy: {:.2}x   (paper §6.1: ~1.11x)",
        results[2] / results[0]
    );
    println!(
        "Natural vs NVCC strategy:  {:.2}x   (paper §6.1: ~1.09x)",
        results[2] / results[1]
    );
}
