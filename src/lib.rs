//! Umbrella crate re-exporting the whole workspace, used by `examples/` and
//! the cross-crate integration tests in `tests/`.
pub use gpusim;
pub use kernels;
pub use perfmodel;
pub use sass;
pub use serve;
pub use tensor;
pub use wino_core;
